package scenario

import (
	"fmt"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/replicalist"
	"github.com/p2pgossip/update/internal/simnet"
)

// catalogN is the population size shared by the catalog scenarios — small
// enough that the full matrix runs in well under a second per seed, large
// enough for partitions, skewed links, and mass failures to have structure.
const catalogN = 60

// baseConfig is the protocol configuration the catalog runs under: fanout
// ≈ 5, decaying PF, partial lists, eager pull with a short timeout so
// recovery happens within a scenario's settle phase.
func baseConfig(n int) gossip.Config {
	return gossip.Config{
		R:              n,
		Fr:             0.08,
		NewPF:          func() pf.Func { return pf.Geometric{Base: 0.9} },
		PartialList:    true,
		TruncatePolicy: replicalist.DropRandom,
		PullAttempts:   3,
		PullTimeout:    10,
		Ack:            gossip.AckNone,
	}
}

// spread schedules `count` writes of distinct keys across distinct peers,
// one every `every` rounds starting at `start`.
func spread(count, n, start, every int) []Publish {
	out := make([]Publish, count)
	for i := range out {
		out[i] = Publish{
			Round: start + i*every,
			Peer:  (i * 7) % n,
			Key:   fmt.Sprintf("k%02d", i),
			Value: fmt.Sprintf("v%02d", i),
		}
	}
	return out
}

// halves returns the peer sets [0, n/2) and [n/2, n).
func halves(n int) (a, b []int) {
	for i := 0; i < n/2; i++ {
		a = append(a, i)
	}
	for i := n / 2; i < n; i++ {
		b = append(b, i)
	}
	return a, b
}

// Catalog returns the named scenarios, in execution order. Each pairs one
// adversity the paper does not model with the invariants that must survive
// it; combined-chaos stacks them all.
func Catalog() []Scenario {
	return []Scenario{
		steadyState(),
		heavyChurn(),
		lossyLinks(),
		splitBrainAndHeal(),
		flappingPartition(),
		massCrashRestart(),
		slowLinkSkew(),
		slowLinkSkewThrottled(),
		combinedChaos(),
		longAbsentRejoiner(),
		unboundedHistorySoak(),
	}
}

// Find returns the catalog scenario with the given name.
func Find(name string) (Scenario, bool) {
	for _, sc := range Catalog() {
		if sc.Name == name {
			return sc, true
		}
	}
	return Scenario{}, false
}

// steadyState is the control: no churn, no faults. Everything else is a
// perturbation of this baseline, and the overhead bound here is tight.
func steadyState() Scenario {
	n := catalogN
	return Scenario{
		Name:           "steady-state",
		Description:    "control run: full availability, clean links",
		N:              n,
		InitialOnline:  n,
		FaultRounds:    25,
		SettleRounds:   30,
		Config:         baseConfig(n),
		Workload:       append(spread(8, n, 0, 2), Publish{Round: 20, Peer: 3, Key: "k00", Delete: true}),
		OverheadFactor: 4,
		AnalyticSigma:  1,
	}
}

// heavyChurn runs the paper's core adversity well above its assumed rates:
// every round each online peer stays with probability 0.8 only.
func heavyChurn() Scenario {
	n := catalogN
	return Scenario{
		Name:          "heavy-churn",
		Description:   "aggressive Bernoulli churn (sigma 0.8, p_on 0.25)",
		N:             n,
		InitialOnline: n * 55 / 100,
		FaultRounds:   40,
		SettleRounds:  35,
		Config:        baseConfig(n),
		NewChurn: func(int) churn.Process {
			return churn.Bernoulli{Sigma: 0.8, POn: 0.25}
		},
		Workload:       spread(8, n, 0, 4),
		OverheadFactor: 8,
		AnalyticSigma:  0.8,
	}
}

// lossyLinks drops a quarter of all traffic, uniformly: the flooding-list
// dedup sees fewer duplicates and must not compensate with a blowup, and
// pull anti-entropy must fill every hole.
func lossyLinks() Scenario {
	n := catalogN
	cfg := baseConfig(n)
	// Loss never heals here, so convergence rides on repeated pull waves:
	// a shorter timeout and a longer settle give ~5 retry rounds, putting
	// the residual miss probability per (update, peer) below 1e-5.
	cfg.PullTimeout = 8
	return Scenario{
		Name:          "lossy-links",
		Description:   "25% independent message loss on every edge",
		N:             n,
		InitialOnline: n,
		FaultRounds:   30,
		SettleRounds:  42,
		Config:        cfg,
		NewFaults: func(int) *simnet.FaultPlane {
			return simnet.NewFaultPlane().SetDefault(simnet.EdgeFault{Drop: 0.25})
		},
		Workload:       spread(8, n, 0, 3),
		OverheadFactor: 6,
		AnalyticSigma:  1,
	}
}

// splitBrainAndHeal cuts the population in half, lets both sides write
// independently, then heals the cut: the halves must merge to one state.
func splitBrainAndHeal() Scenario {
	n := catalogN
	cfg := baseConfig(n)
	// After the heal, cross-half repair rides exclusively on pulls, and half
	// the population is stale for the other half's writes: five attempts per
	// wave make the all-targets-equally-stale wave a 3% event, and the ~5
	// waves in the settle window drive the residual divergence below 1e-8.
	cfg.PullAttempts = 5
	cfg.PullTimeout = 8
	w := spread(6, n, 0, 2)
	// Writes on both sides of the cut while it is active.
	w = append(w,
		Publish{Round: 10, Peer: 2, Key: "left", Value: "L"},
		Publish{Round: 12, Peer: n - 3, Key: "right", Value: "R"},
		Publish{Round: 16, Peer: 5, Key: "both", Value: "fromL"},
		Publish{Round: 18, Peer: n - 7, Key: "both", Value: "fromR"},
	)
	return Scenario{
		Name:          "split-brain-and-heal",
		Description:   "two-way half/half partition rounds 4..30, then heal",
		N:             n,
		InitialOnline: n,
		FaultRounds:   34,
		SettleRounds:  40,
		Config:        cfg,
		NewFaults: func(n int) *simnet.FaultPlane {
			a, b := halves(n)
			return simnet.NewFaultPlane().AddPartition(simnet.Partition{
				From: 4, Until: 30, A: a, B: b,
			})
		},
		Workload:       w,
		OverheadFactor: 6,
		AnalyticSigma:  1,
	}
}

// flappingPartition opens and closes the same cut three times — the
// membership and suspect machinery must not oscillate into divergence.
func flappingPartition() Scenario {
	n := catalogN
	cfg := baseConfig(n)
	// Same cross-half repair arithmetic as split-brain-and-heal.
	cfg.PullAttempts = 5
	cfg.PullTimeout = 8
	return Scenario{
		Name:          "flapping-partition",
		Description:   "half/half cut flapping: rounds 4..10, 14..20, 24..30",
		N:             n,
		InitialOnline: n,
		FaultRounds:   34,
		SettleRounds:  40,
		Config:        cfg,
		NewFaults: func(n int) *simnet.FaultPlane {
			a, b := halves(n)
			plane := simnet.NewFaultPlane()
			for _, window := range [][2]int{{4, 10}, {14, 20}, {24, 30}} {
				plane.AddPartition(simnet.Partition{
					From: window[0], Until: window[1], A: a, B: b,
				})
			}
			return plane
		},
		Workload:       spread(9, n, 0, 3),
		OverheadFactor: 6,
		AnalyticSigma:  1,
	}
}

// massCrashRestart combines a scheduled 50% knockout (the churn.Schedule
// event source) with process crashes that wipe volatile state and recover
// from store snapshots.
func massCrashRestart() Scenario {
	n := catalogN
	w := spread(6, n, 0, 2)
	// Writes after the catastrophe, at peers that are neither crashed nor
	// workload-owned keys colliding.
	w = append(w,
		Publish{Round: 16, Peer: 30, Key: "post0", Value: "p0"},
		Publish{Round: 18, Peer: 41, Key: "post1", Value: "p1"},
	)
	return Scenario{
		Name:          "mass-crash-restart",
		Description:   "50% knockout at round 14 (revive at 28) + 4 crash/restarts from snapshot",
		N:             n,
		InitialOnline: n,
		FaultRounds:   36,
		SettleRounds:  34,
		Config:        baseConfig(n),
		NewChurn: func(int) churn.Process {
			sched, err := churn.NewSchedule(churn.Static{},
				churn.Event{Round: 14, Kind: churn.Knockout, Fraction: 0.5},
				churn.Event{Round: 28, Kind: churn.Revive, Fraction: 1},
			)
			if err != nil {
				panic(err) // static catalog events; cannot fail
			}
			return sched
		},
		NewFaults: func(int) *simnet.FaultPlane {
			plane := simnet.NewFaultPlane()
			for i, peer := range []int{3, 9, 15, 21} {
				plane.AddCrash(peer, 10+i, 24+i)
			}
			return plane
		},
		Workload:       w,
		OverheadFactor: 8,
		AnalyticSigma:  1,
	}
}

// overwrites schedules `count` writes cycling over `keys` hot keys, one per
// round from round 0, with the writing peer hopping across the population but
// never landing on `avoid`.
func overwrites(count, keys, n, avoid int) []Publish {
	out := make([]Publish, count)
	for i := range out {
		peer := (i*7 + 1) % n
		if peer == avoid {
			peer = (peer + 1) % n
		}
		out[i] = Publish{
			Round: i,
			Peer:  peer,
			Key:   fmt.Sprintf("hot%02d", i%keys),
			Value: fmt.Sprintf("v%03d", i),
		}
	}
	return out
}

// retentionConfig layers the janitor and snapshot knobs onto the base
// catalog configuration: periodic pulls feed the stable frontier, the
// janitor compacts on a fixed cadence, stale pull clocks age out of the
// frontier (so one long-dead peer cannot pin compaction forever), and a
// pull gap past the threshold — or past the compaction watermark — is
// answered with one snapshot frame.
func retentionConfig(n int) gossip.Config {
	cfg := baseConfig(n)
	cfg.PullEvery = 6
	cfg.CompactEvery = 10
	cfg.FrontierTTL = 24
	cfg.SnapshotCatchUp = 40
	return cfg
}

// longAbsentRejoiner crashes one peer for nearly the whole run while the
// rest of the population overwrites a small key set and compacts the
// history away. The rejoiner's pull gap is below every surviving delta, so
// it must be caught up by exactly one snapshot, whose size is bounded by
// the live state — not by the ~50 updates it slept through.
func longAbsentRejoiner() Scenario {
	n := catalogN
	cfg := retentionConfig(n)
	// One pull target per wave: the rejoiner's catch-up must be a single
	// snapshot transfer, not one per contacted peer. Timeout pulls stay off
	// for the same reason; periodic pulls cover the stragglers.
	cfg.PullAttempts = 1
	cfg.PullTimeout = 0
	return Scenario{
		Name:          "long-absent-rejoiner",
		Description:   "peer 7 crashed rounds 2..56 rejoins via one snapshot catch-up",
		N:             n,
		InitialOnline: n,
		FaultRounds:   58,
		SettleRounds:  30,
		Config:        cfg,
		NewFaults: func(int) *simnet.FaultPlane {
			return simnet.NewFaultPlane().AddCrash(7, 2, 56)
		},
		Workload:         overwrites(50, 10, n, 7),
		OverheadFactor:   6,
		AnalyticSigma:    1,
		LogBoundFactor:   3,
		RejoinByteFactor: 3,
		ExpectSnapshots:  1,
	}
}

// unboundedHistorySoak hammers a handful of hot keys with sustained
// overwrites — 15× more updates than keys — and requires every peer's
// resident log to stay proportional to the live key count. Without frontier
// compaction this workload grows the log linearly forever.
func unboundedHistorySoak() Scenario {
	n := catalogN
	cfg := retentionConfig(n)
	cfg.PullEvery = 5
	cfg.CompactEvery = 8
	cfg.FrontierTTL = 20
	return Scenario{
		Name:           "unbounded-history-soak",
		Description:    "120 overwrites of 8 hot keys; resident log stays O(live keys)",
		N:              n,
		InitialOnline:  n,
		FaultRounds:    122,
		SettleRounds:   30,
		Config:         cfg,
		Workload:       overwrites(120, 8, n, -1),
		OverheadFactor: 6,
		AnalyticSigma:  1,
		LogBoundFactor: 4,
	}
}

// slowLinkSkew delays and reorders a fifth of the directed edges: old pushes
// land late and permuted, exercising the duplicate and obsolete paths.
func slowLinkSkew() Scenario {
	n := catalogN
	return Scenario{
		Name:          "slow-link-skew",
		Description:   "a fifth of edges carry +2..4 rounds latency with reordering",
		N:             n,
		InitialOnline: n,
		FaultRounds:   30,
		SettleRounds:  30,
		Config:        baseConfig(n),
		NewFaults: func(n int) *simnet.FaultPlane {
			plane := simnet.NewFaultPlane()
			slow := simnet.EdgeFault{Delay: 2, Jitter: 2, Reorder: true}
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					if from != to && (from+to)%5 == 0 {
						plane.SetEdge(from, to, slow)
					}
				}
			}
			return plane
		},
		Workload:       spread(8, n, 0, 3),
		OverheadFactor: 5,
		AnalyticSigma:  1,
	}
}

// slowLinkSkewThrottled reruns slowLinkSkew's fault plane and workload with
// a hard per-destination link budget and the coalescing senders it enables:
// over-budget traffic merges into per-destination pending deltas (the
// simulator mirror of the live runtime's per-peer senders) instead of
// queueing. On top of the core invariants — delivery and convergence must
// still hold through links that refuse most of the offered traffic — it
// asserts the coalescing memory bound: no pending delta ever exceeds a
// small multiple of the live key count, however much traffic was refused.
func slowLinkSkewThrottled() Scenario {
	sc := slowLinkSkew()
	sc.Name = "slow-link-skew-throttled"
	sc.Description = "slow-link-skew + hot-key overwrites under a 1 msg/round/dest link budget; coalescing senders stay O(state)"
	// One message per destination per round: any round in which a peer owes
	// a destination a push plus an ack, a pull exchange, or several hot-key
	// versions must coalesce the excess rather than emit it.
	sc.Config.LinkBudget = 1
	sc.SenderBoundFactor = 2
	// Sustained overwrites of a small hot-key set: the newest-version-wins
	// merge rule is what keeps pending deltas from growing with the 40
	// publishes — the invariant bound is stated in distinct keys (8).
	sc.Workload = overwrites(40, 8, sc.N, -1)
	sc.OverheadFactor = 6
	// Budgeted links trickle: give anti-entropy a longer stable tail to
	// finish the merge.
	sc.SettleRounds = 40
	return sc
}

// combinedChaos stacks everything: churn, loss, slow edges, a partition, a
// knockout wave, crash/restarts — with the §6 ack optimisation on, so the
// suspect machinery runs under fire too.
func combinedChaos() Scenario {
	n := catalogN
	cfg := baseConfig(n)
	cfg.Ack = gossip.AckFirst
	cfg.SuspectTTL = 8
	// Standing loss plus a partition: give recovery the same five-attempt,
	// short-timeout pull regime as the partition scenarios.
	cfg.PullAttempts = 5
	cfg.PullTimeout = 8
	w := spread(8, n, 0, 3)
	w = append(w, Publish{Round: 26, Peer: 50, Key: "late", Value: "chaos"})
	return Scenario{
		Name:          "combined-chaos",
		Description:   "churn + 10% loss + slow edges + partition + knockout + crashes, acks on",
		N:             n,
		InitialOnline: n * 2 / 3,
		FaultRounds:   40,
		SettleRounds:  40,
		Config:        cfg,
		NewChurn: func(int) churn.Process {
			sched, err := churn.NewSchedule(
				churn.Bernoulli{Sigma: 0.85, POn: 0.3},
				churn.Event{Round: 20, Kind: churn.Knockout, Fraction: 0.3},
				churn.Event{Round: 30, Kind: churn.Revive, Fraction: 1},
			)
			if err != nil {
				panic(err) // static catalog events; cannot fail
			}
			return sched
		},
		NewFaults: func(n int) *simnet.FaultPlane {
			plane := simnet.NewFaultPlane().SetDefault(simnet.EdgeFault{Drop: 0.1})
			slow := simnet.EdgeFault{Drop: 0.1, Delay: 1, Jitter: 2, Reorder: true}
			for from := 0; from < n; from++ {
				for to := 0; to < n; to++ {
					if from != to && (from+to)%6 == 0 {
						plane.SetEdge(from, to, slow)
					}
				}
			}
			var quarter, rest []int
			for i := 0; i < n; i++ {
				if i < n/4 {
					quarter = append(quarter, i)
				} else {
					rest = append(rest, i)
				}
			}
			plane.AddPartition(simnet.Partition{From: 8, Until: 18, A: quarter, B: rest})
			plane.AddCrash(5, 6, 22)
			plane.AddCrash(11, 9, 25)
			return plane
		},
		Workload:       w,
		OverheadFactor: 12,
		AnalyticSigma:  0.85,
	}
}
