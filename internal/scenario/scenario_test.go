package scenario

import (
	"bytes"
	"testing"
)

// TestCatalogShape checks the catalog is the advertised matrix: at least 8
// uniquely named, valid scenarios.
func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) < 8 {
		t.Fatalf("catalog has %d scenarios, want >= 8", len(cat))
	}
	seen := make(map[string]bool)
	for _, sc := range cat {
		if err := sc.Validate(); err != nil {
			t.Errorf("scenario %s invalid: %v", sc.Name, err)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
	if _, ok := Find("combined-chaos"); !ok {
		t.Fatal("Find missed a catalog scenario")
	}
	if _, ok := Find("nope"); ok {
		t.Fatal("Find invented a scenario")
	}
}

// TestCatalogInvariants runs every catalog scenario under one seed and
// requires all invariants to pass — the tier-1 mirror of the CI matrix.
func TestCatalogInvariants(t *testing.T) {
	for _, sc := range Catalog() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			res, err := Run(sc, 1)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			for _, inv := range res.Invariants {
				if !inv.Passed {
					t.Errorf("invariant %s violated: %s", inv.Name, inv.Detail)
				}
			}
			if !res.Passed {
				t.Fail()
			}
			if res.Published == 0 || res.Published != len(res.Updates) {
				t.Fatalf("published %d updates, listed %d", res.Published, len(res.Updates))
			}
		})
	}
}

// TestRunDeterministic runs the heaviest scenario twice under the same seed
// and requires byte-identical JSON — the contract cmd/scenarios -seed S
// advertises.
func TestRunDeterministic(t *testing.T) {
	sc, ok := Find("combined-chaos")
	if !ok {
		t.Fatal("combined-chaos missing")
	}
	render := func() []byte {
		res, err := Run(sc, 7)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		raw, err := res.JSON()
		if err != nil {
			t.Fatalf("JSON: %v", err)
		}
		return raw
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different JSON:\n%s\nvs\n%s", a, b)
	}
}

// TestSeedsDiverge sanity-checks the seed actually matters: different seeds
// should produce different message counts under churn.
func TestSeedsDiverge(t *testing.T) {
	sc, ok := Find("heavy-churn")
	if !ok {
		t.Fatal("heavy-churn missing")
	}
	a, err := Run(sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(sc, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a.Messages == b.Messages && a.FinalOnline == b.FinalOnline {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestValidateRejectsBadScenarios covers the scenario-level validation.
func TestValidateRejectsBadScenarios(t *testing.T) {
	good := steadyState()
	mutations := []func(*Scenario){
		func(s *Scenario) { s.Name = "" },
		func(s *Scenario) { s.N = 0 },
		func(s *Scenario) { s.InitialOnline = s.N + 1 },
		func(s *Scenario) { s.FaultRounds = 0 },
		func(s *Scenario) { s.SettleRounds = 0 },
		func(s *Scenario) { s.OverheadFactor = 0 },
		func(s *Scenario) { s.AnalyticSigma = 0 },
		func(s *Scenario) { s.Workload = []Publish{{Round: -1, Peer: 0, Key: "k"}} },
		func(s *Scenario) { s.Workload = []Publish{{Round: 0, Peer: s.N, Key: "k"}} },
		func(s *Scenario) { s.Config.R = 0 },
	}
	for i, mutate := range mutations {
		sc := good
		mutate(&sc)
		if err := sc.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}
