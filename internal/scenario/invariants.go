package scenario

import (
	"bytes"
	"fmt"

	"github.com/p2pgossip/update/internal/analytic"
	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// checkInvariants evaluates the five core scenario invariants, plus the
// retention invariants a scenario opts into (LogBoundFactor, ExpectSnapshots,
// RejoinByteFactor). All iteration is over slices in fixed order so the
// rendered details are deterministic.
func checkInvariants(sc Scenario, net *gossip.Network, en *simnet.Engine,
	published []store.Update, applied map[applyKey]int, res Result) []InvariantResult {
	online := make([]int, 0, sc.N)
	for i := range net.Peers {
		if en.Population().Online(i) {
			online = append(online, i)
		}
	}
	msgBound, byteBound := checkPushOverhead(sc, published, res.Pushes, res.PushBytes)
	invs := []InvariantResult{
		checkDelivery(net, online, published),
		checkConvergence(net, online),
		checkNoDuplicateApplication(net, published, applied),
		msgBound,
		byteBound,
	}
	if sc.LogBoundFactor > 0 {
		invs = append(invs, checkLogBound(sc, net, online))
	}
	if sc.ExpectSnapshots > 0 {
		invs = append(invs, checkSnapshotCount(sc, res))
	}
	if sc.RejoinByteFactor > 0 {
		invs = append(invs, checkRejoinBytes(sc, net, online, res))
	}
	if sc.SenderBoundFactor > 0 {
		invs = append(invs, checkSenderBound(sc, net, res))
	}
	return invs
}

// checkSenderBound: under a link budget, the coalescing senders merge
// over-budget traffic instead of queueing it, so the largest pending delta
// any peer ever held for one destination must stay within SenderBoundFactor
// × (distinct workload keys + 2): at most one coalesced push per live
// key branch plus the idempotent pull-request/pull-response intents —
// O(live state), however much traffic the throttled link refused.
func checkSenderBound(sc Scenario, net *gossip.Network, res Result) InvariantResult {
	keys := make(map[string]bool, len(sc.Workload))
	for _, p := range sc.Workload {
		keys[p.Key] = true
	}
	bound := int(sc.SenderBoundFactor * float64(len(keys)+2))
	worst, worstPeer := 0, -1
	for i, p := range net.Peers {
		if n := p.PeakPendingPerDest(); n > worst {
			worst, worstPeer = n, i
		}
	}
	return InvariantResult{
		Name:   "bounded-sender-pending",
		Passed: worst <= bound,
		Detail: fmt.Sprintf("worst per-destination pending %d items (peer %d) vs bound %d (factor %g × (%d keys + 2 intents)); %d published under link budget %d",
			worst, worstPeer, bound, sc.SenderBoundFactor, len(keys), len(sc.Workload), sc.Config.LinkBudget),
	}
}

// checkDelivery: every published update (tombstones included — death
// certificates must propagate) reached every final-online peer. A peer whose
// vector clock covers the update counts as delivered even without an
// individual engine state: a snapshot catch-up ships superseded, compacted
// history as clock coverage rather than entry by entry.
func checkDelivery(net *gossip.Network, online []int, published []store.Update) InvariantResult {
	missing := 0
	first := ""
	for _, peer := range online {
		clock := net.Peers[peer].Store().Clock()
		for _, u := range published {
			id := u.ID()
			if !net.Peers[peer].HasUpdate(id) && clock.Get(u.Origin) < u.Seq {
				missing++
				if first == "" {
					first = fmt.Sprintf("update %s missing at peer %d", id, peer)
				}
			}
		}
	}
	if missing > 0 {
		return InvariantResult{
			Name: "eventual-delivery",
			Detail: fmt.Sprintf("%d (update, peer) deliveries missing; first: %s",
				missing, first),
		}
	}
	return InvariantResult{
		Name:   "eventual-delivery",
		Passed: true,
		Detail: fmt.Sprintf("%d updates delivered to all %d final-online peers", len(published), len(online)),
	}
}

// checkConvergence: final-online peers agree on vector clocks and live state.
func checkConvergence(net *gossip.Network, online []int) InvariantResult {
	if len(online) == 0 {
		return InvariantResult{Name: "convergence", Detail: "no final-online peers"}
	}
	ref := net.Peers[online[0]]
	refClock := ref.Store().Clock()
	for _, peer := range online[1:] {
		clock := net.Peers[peer].Store().Clock()
		if refClock.Compare(clock) != version.Equal {
			return InvariantResult{
				Name: "convergence",
				Detail: fmt.Sprintf("vector clock of peer %d differs from peer %d",
					peer, online[0]),
			}
		}
		if !ref.Store().Equal(net.Peers[peer].Store()) {
			return InvariantResult{
				Name: "convergence",
				Detail: fmt.Sprintf("store of peer %d differs from peer %d",
					peer, online[0]),
			}
		}
	}
	return InvariantResult{
		Name:   "convergence",
		Passed: true,
		Detail: fmt.Sprintf("%d final-online peers share one clock and store", len(online)),
	}
}

// checkNoDuplicateApplication: no peer applied any update more than once —
// the store's (origin, seq) idempotence held under loss, reordering, and
// crash-restart replays.
func checkNoDuplicateApplication(net *gossip.Network, published []store.Update,
	applied map[applyKey]int) InvariantResult {
	dupes := 0
	first := ""
	for _, u := range published {
		for peer := range net.Peers {
			if n := applied[applyKey{peer: peer, ref: u.Ref()}]; n > 1 {
				dupes++
				if first == "" {
					first = fmt.Sprintf("update %s applied %d times at peer %d", u.ID(), n, peer)
				}
			}
		}
	}
	if dupes > 0 {
		return InvariantResult{
			Name:   "no-duplicate-application",
			Detail: fmt.Sprintf("%d double applications; first: %s", dupes, first),
		}
	}
	return InvariantResult{
		Name:   "no-duplicate-application",
		Passed: true,
		Detail: "every (update, peer) application happened at most once",
	}
}

// checkLogBound: with the janitor running, no final-online peer's resident
// log may grow with history length. The bound is LogBoundFactor × (distinct
// workload keys + publishes inside the trailing compaction window): live
// state keeps one backing entry per key (plus coexisting branches), and
// entries newer than the last frontier the janitor could have used are
// legitimately still resident.
func checkLogBound(sc Scenario, net *gossip.Network, online []int) InvariantResult {
	keys := make(map[string]bool, len(sc.Workload))
	for _, p := range sc.Workload {
		keys[p.Key] = true
	}
	window := sc.Config.CompactEvery + sc.Config.PullEvery + sc.Config.FrontierTTL
	total := sc.FaultRounds + sc.SettleRounds
	recent := 0
	for _, p := range sc.Workload {
		if p.Round >= total-window {
			recent++
		}
	}
	bound := int(sc.LogBoundFactor * float64(len(keys)+recent))
	worst, worstPeer := -1, -1
	for _, peer := range online {
		if n := net.Peers[peer].Store().UpdateCount(); n > worst {
			worst, worstPeer = n, peer
		}
	}
	return InvariantResult{
		Name:   "bounded-resident-log",
		Passed: worst <= bound,
		Detail: fmt.Sprintf("worst resident log %d entries (peer %d) vs bound %d (factor %g × (%d keys + %d in-window publishes)); %d published",
			worst, worstPeer, bound, sc.LogBoundFactor, len(keys), recent, len(sc.Workload)),
	}
}

// checkSnapshotCount: exactly the expected number of snapshot catch-up
// transfers happened — the far-behind rejoiner was served one snapshot, and
// nobody else fell off the delta path.
func checkSnapshotCount(sc Scenario, res Result) InvariantResult {
	return InvariantResult{
		Name:   "snapshot-catch-up",
		Passed: res.Snapshots == int64(sc.ExpectSnapshots),
		Detail: fmt.Sprintf("%d snapshot transfers, expected exactly %d",
			res.Snapshots, sc.ExpectSnapshots),
	}
}

// checkRejoinBytes: total snapshot bytes shipped stay within
// RejoinByteFactor × one serialised live-state snapshot — catch-up cost is
// O(live state), independent of how much history the absent peer missed.
func checkRejoinBytes(sc Scenario, net *gossip.Network, online []int, res Result) InvariantResult {
	if len(online) == 0 {
		return InvariantResult{Name: "bounded-rejoin-bytes", Detail: "no final-online peers"}
	}
	var buf bytes.Buffer
	if err := net.Peers[online[0]].Store().WriteSnapshot(&buf); err != nil {
		return InvariantResult{
			Name:   "bounded-rejoin-bytes",
			Detail: fmt.Sprintf("reference snapshot failed: %v", err),
		}
	}
	bound := int64(sc.RejoinByteFactor * float64(buf.Len()))
	return InvariantResult{
		Name:   "bounded-rejoin-bytes",
		Passed: res.SnapshotBytes <= bound,
		Detail: fmt.Sprintf("%dB shipped in %d snapshots vs bound %dB (factor %g × %dB live-state snapshot)",
			res.SnapshotBytes, res.Snapshots, bound, sc.RejoinByteFactor, buf.Len()),
	}
}

// checkPushOverhead: push messages stay within OverheadFactor × the
// analytic push-phase expectation (§4.2's M(t) recursion) per published
// update, and push traffic stays within the same factor of the analytic
// byte cost Σ M(t)·S_M(t) — evaluated against the real binary-encoded sizes
// the simulator now charges (the U term is each update's actual encoded
// push message; the γ·R·L(t) list term uses γ = replicalist.EntryBytes,
// an upper bound on an encoded "peer-<id>" entry). These are the tripwires
// for dedup, flooding-list, and codec-bloat regressions, which show up as
// traffic blowups long before they break convergence.
func checkPushOverhead(sc Scenario, published []store.Update, pushes, pushBytes int64) (InvariantResult, InvariantResult) {
	params := analytic.PushParams{
		R:             sc.N,
		ROn0:          sc.InitialOnline,
		Sigma:         sc.AnalyticSigma,
		Fr:            sc.Config.Fr,
		PartialList:   sc.Config.PartialList,
		ListThreshold: sc.Config.ListThreshold,
		// UpdateBytes stays 0: TotalBytes is linear in it, so the per-update
		// payload term is added per published update below.
	}
	if sc.Config.NewPF != nil {
		params.PF = sc.Config.NewPF()
	}
	res, err := analytic.Push(params)
	if err != nil {
		detail := fmt.Sprintf("analytic model rejected parameters: %v", err)
		return InvariantResult{Name: "bounded-push-overhead", Detail: detail},
			InvariantResult{Name: "bounded-push-bytes", Detail: detail}
	}
	perUpdate := res.TotalMessages()
	bound := sc.OverheadFactor * perUpdate * float64(len(published))
	msgs := InvariantResult{
		Name:   "bounded-push-overhead",
		Passed: float64(pushes) <= bound,
		Detail: fmt.Sprintf("%d pushes vs bound %.0f (%.1f analytic msgs/update × %d updates × factor %g)",
			pushes, bound, perUpdate, len(published), sc.OverheadFactor),
	}

	// Byte bound: per update, the analytic list traffic (UpdateBytes = 0)
	// plus the update's real encoded payload on every expected message. The
	// widest sender address bounds the per-message frame cost.
	payload := 0
	for _, u := range published {
		payload += gossip.PushBaseBytes(u, sc.N-1)
	}
	listBytes := res.TotalBytes() * float64(len(published))
	byteBound := sc.OverheadFactor * (perUpdate*float64(payload) + listBytes)
	bytes := InvariantResult{
		Name:   "bounded-push-bytes",
		Passed: float64(pushBytes) <= byteBound,
		Detail: fmt.Sprintf("%dB pushed vs bound %.0fB (%.1f msgs/update × %dB payloads + %.0fB analytic list traffic, × factor %g)",
			pushBytes, byteBound, perUpdate, payload, listBytes, sc.OverheadFactor),
	}
	return msgs, bytes
}
