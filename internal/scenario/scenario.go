// Package scenario declares named fault-injection scenarios for the update
// protocol and the machine-checkable invariants each must uphold.
//
// A scenario is a deterministic experiment: a population of gossip peers on
// the round-based simulator, an availability process, a fault plane (message
// loss, delay and reordering, scheduled partitions, crash/restart events),
// and a publish workload. After a faulted phase the network is given a
// stable settle phase, then five invariants are checked:
//
//   - eventual-delivery: every published update reached every final-online
//     peer (tombstones included — death certificates must propagate);
//   - convergence: final-online peers hold identical vector clocks and
//     identical live store state;
//   - no-duplicate-application: no peer applied any update more than once;
//   - bounded-push-overhead: push messages stay within a scenario-specific
//     factor of the paper's analytic push-phase cost;
//   - bounded-push-bytes: push traffic, accounted at the live runtime's
//     real binary-encoded sizes, stays within the same factor of the
//     analytic byte cost Σ M(t)·S_M(t).
//
// Runs are deterministic: the same scenario and seed produce byte-identical
// Result JSON. The catalog in catalog.go is executed by cmd/scenarios and by
// the tier-1 test suite, so a protocol regression that only shows under
// faults fails CI.
package scenario

import (
	"fmt"
	"math/rand"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/store"
)

// Publish is one scheduled workload write.
type Publish struct {
	// Round schedules the write.
	Round int
	// Peer is the publishing replica (forced online for the write; must not
	// be crashed at Round).
	Peer int
	// Key and Value are the written item. Value is ignored for deletes.
	Key, Value string
	// Delete publishes a tombstone instead.
	Delete bool
}

// Scenario is one named fault-injection experiment.
type Scenario struct {
	// Name identifies the scenario in results and CLI filters.
	Name string
	// Description is one line of intent, for -list and the docs.
	Description string
	// N is the population size.
	N int
	// InitialOnline is the number of peers online at round 0.
	InitialOnline int
	// FaultRounds is the length of the phase under churn and faults.
	FaultRounds int
	// SettleRounds is the stable tail (everyone online, faults only via
	// still-pending crash windows) in which anti-entropy must converge.
	SettleRounds int
	// Config is the protocol configuration shared by all peers.
	Config gossip.Config
	// NewChurn builds the availability process; nil means everyone stays
	// online. Stateful processes are rebuilt per run for isolation.
	NewChurn func(n int) churn.Process
	// NewFaults builds the fault plane; nil means a clean network. A plane
	// is bound to one engine, so it too is rebuilt per run.
	NewFaults func(n int) *simnet.FaultPlane
	// Workload is the publish schedule.
	Workload []Publish
	// OverheadFactor bounds push messages at OverheadFactor × the analytic
	// push-phase expectation per update.
	OverheadFactor float64
	// AnalyticSigma is the per-round stay-online probability fed to the
	// analytic model for the overhead bound (1 for fault-only scenarios).
	AnalyticSigma float64
	// LogBoundFactor, when positive, adds the bounded-resident-log
	// invariant: every final-online peer's resident log entries must stay
	// within LogBoundFactor × (distinct workload keys + publishes within the
	// trailing compaction window). It is the tripwire for unbounded history
	// growth; set it only with Config.CompactEvery > 0.
	LogBoundFactor float64
	// RejoinByteFactor, when positive, adds the bounded-rejoin-bytes
	// invariant: the total snapshot bytes shipped during the run must stay
	// within RejoinByteFactor × one final live-state snapshot — catch-up
	// cost O(live state), not O(history).
	RejoinByteFactor float64
	// ExpectSnapshots, when positive, adds the snapshot-catch-up invariant:
	// exactly this many snapshot transfers must have happened.
	ExpectSnapshots int
	// SenderBoundFactor, when positive, adds the bounded-sender-pending
	// invariant: no peer's per-destination coalesced pending delta may ever
	// exceed SenderBoundFactor × (distinct workload keys + 2) items — the
	// sender memory stays O(live state), not O(traffic shipped through a
	// throttled link). Requires Config.LinkBudget > 0.
	SenderBoundFactor float64
}

// Validate reports whether the scenario is runnable.
func (s Scenario) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("scenario: unnamed")
	case s.N <= 0:
		return fmt.Errorf("scenario %s: population %d", s.Name, s.N)
	case s.InitialOnline < 0 || s.InitialOnline > s.N:
		return fmt.Errorf("scenario %s: initial online %d out of [0,%d]", s.Name, s.InitialOnline, s.N)
	case s.FaultRounds <= 0 || s.SettleRounds <= 0:
		return fmt.Errorf("scenario %s: phases %d+%d must be positive", s.Name, s.FaultRounds, s.SettleRounds)
	case s.OverheadFactor <= 0:
		return fmt.Errorf("scenario %s: overhead factor %g", s.Name, s.OverheadFactor)
	case s.AnalyticSigma <= 0 || s.AnalyticSigma > 1:
		return fmt.Errorf("scenario %s: analytic sigma %g out of (0,1]", s.Name, s.AnalyticSigma)
	case s.LogBoundFactor < 0:
		return fmt.Errorf("scenario %s: log bound factor %g negative", s.Name, s.LogBoundFactor)
	case s.LogBoundFactor > 0 && s.Config.CompactEvery <= 0:
		return fmt.Errorf("scenario %s: log bound factor without a janitor cadence", s.Name)
	case s.RejoinByteFactor < 0:
		return fmt.Errorf("scenario %s: rejoin byte factor %g negative", s.Name, s.RejoinByteFactor)
	case s.ExpectSnapshots < 0:
		return fmt.Errorf("scenario %s: expected snapshots %d negative", s.Name, s.ExpectSnapshots)
	case s.SenderBoundFactor < 0:
		return fmt.Errorf("scenario %s: sender bound factor %g negative", s.Name, s.SenderBoundFactor)
	case s.SenderBoundFactor > 0 && s.Config.LinkBudget <= 0:
		return fmt.Errorf("scenario %s: sender bound factor without a link budget", s.Name)
	}
	for i, p := range s.Workload {
		if p.Round < 0 || p.Round >= s.FaultRounds+s.SettleRounds {
			return fmt.Errorf("scenario %s: publish %d at round %d outside run", s.Name, i, p.Round)
		}
		if p.Peer < 0 || p.Peer >= s.N {
			return fmt.Errorf("scenario %s: publish %d at peer %d out of range", s.Name, i, p.Peer)
		}
	}
	return s.Config.Validate()
}

// InvariantResult is one checked invariant.
type InvariantResult struct {
	Name   string `json:"name"`
	Passed bool   `json:"passed"`
	Detail string `json:"detail"`
}

// Result is the machine-readable outcome of one scenario run. Same scenario
// and seed ⇒ byte-identical JSON (no timestamps, no map-order dependence).
type Result struct {
	Scenario        string   `json:"scenario"`
	Description     string   `json:"description"`
	Seed            int64    `json:"seed"`
	N               int      `json:"n"`
	Rounds          int      `json:"rounds"`
	Published       int      `json:"published"`
	Updates         []string `json:"updates"`
	FinalOnline     int      `json:"final_online"`
	Messages        int64    `json:"messages"`
	MessagesOffline int64    `json:"messages_offline"`
	MessagesDropped int64    `json:"messages_dropped"`
	Bytes           int64    `json:"bytes"`
	Pushes          int64    `json:"pushes"`
	PushBytes       int64    `json:"push_bytes"`
	Duplicates      int64    `json:"duplicates"`
	PullRequests    int64    `json:"pull_requests"`
	PullUpdates     int64    `json:"pull_updates"`
	Snapshots       int64    `json:"snapshots"`
	SnapshotBytes   int64    `json:"snapshot_bytes"`
	LogCompacted    int64    `json:"log_compacted"`
	// SenderPeakPending is the largest per-destination coalesced pending
	// delta any peer accumulated; only set (and serialised) when the
	// scenario runs with a link budget, so legacy result files are
	// byte-stable.
	SenderPeakPending int               `json:"sender_peak_pending,omitempty"`
	Invariants        []InvariantResult `json:"invariants"`
	Passed            bool              `json:"passed"`
}

// settleAfter wraps an availability process and forces every peer online from
// round After on — the stable tail in which anti-entropy must converge.
// Fault-plane crash windows still override it.
type settleAfter struct {
	base  churn.Process
	after int
	round int
}

var (
	_ churn.Process    = (*settleAfter)(nil)
	_ churn.RoundAware = (*settleAfter)(nil)
)

func (s *settleAfter) BeginRound(round int) {
	s.round = round
	if ra, ok := s.base.(churn.RoundAware); ok {
		ra.BeginRound(round)
	}
}

func (s *settleAfter) Next(peer int, current churn.State, rng *rand.Rand) churn.State {
	if s.round >= s.after {
		return churn.Online
	}
	return s.base.Next(peer, current, rng)
}

// LastEventRound implements churn.EventSource: the settle transition is
// itself a scheduled event, on top of any the base process carries.
func (s *settleAfter) LastEventRound() int {
	last := s.after
	if es, ok := s.base.(churn.EventSource); ok && es.LastEventRound() > last {
		last = es.LastEventRound()
	}
	return last
}

func (s *settleAfter) String() string {
	return fmt.Sprintf("settle-after(%d,%s)", s.after, s.base)
}

// applyKey identifies one (peer, update) application for duplicate checking.
type applyKey struct {
	peer int
	ref  store.Ref
}

// Run executes one scenario under one seed and returns its result. The error
// reports harness problems (invalid scenario, construction failures);
// invariant violations land in the Result instead.
func Run(sc Scenario, seed int64) (Result, error) {
	if err := sc.Validate(); err != nil {
		return Result{}, err
	}
	net, err := gossip.BuildNetwork(sc.N, sc.Config, 0, seed)
	if err != nil {
		return Result{}, err
	}
	// Restarting peers re-learn a fixed seed list, as a real deployment
	// would from its config file.
	boot := []int{0, 1, 2}
	for _, p := range net.Peers {
		p.SetBootstrap(boot...)
	}

	// Count store-level applications for the no-duplicate invariant.
	applied := make(map[applyKey]int)
	for i, p := range net.Peers {
		peer := i
		p.Store().SetApplyHook(func(u store.Update, res store.ApplyResult, _ int) {
			if res == store.Applied {
				applied[applyKey{peer: peer, ref: u.Ref()}]++
			}
		})
	}

	base := churn.Process(churn.Static{})
	if sc.NewChurn != nil {
		base = sc.NewChurn(sc.N)
	}
	var plane *simnet.FaultPlane
	if sc.NewFaults != nil {
		plane = sc.NewFaults(sc.N)
	}
	reg := metrics.NewRegistry()
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: sc.InitialOnline,
		Churn:         &settleAfter{base: base, after: sc.FaultRounds},
		Seed:          seed,
		Faults:        plane,
		Metrics:       reg,
	})
	if err != nil {
		return Result{}, err
	}

	byRound := make(map[int][]Publish, len(sc.Workload))
	for _, p := range sc.Workload {
		byRound[p.Round] = append(byRound[p.Round], p)
	}
	var published []store.Update
	runWorkload := func() {
		for _, p := range byRound[en.Round()] {
			if en.Crashed(p.Peer) {
				// Writing at a dead process is a workload bug; catalog
				// scenarios avoid it, and skipping keeps the invariants
				// consistent if a custom one does not.
				continue
			}
			if !en.Population().Online(p.Peer) {
				// A user writing at this replica implies it is up.
				en.Population().SetOnline(p.Peer, true)
			}
			env := simnet.NewTestEnv(en, p.Peer)
			if p.Delete {
				published = append(published, net.Peers[p.Peer].PublishDelete(env, p.Key))
			} else {
				published = append(published, net.Peers[p.Peer].Publish(env, p.Key, []byte(p.Value)))
			}
		}
	}

	total := sc.FaultRounds + sc.SettleRounds
	en.Step() // round 0
	runWorkload()
	for en.Round() < total {
		en.Step()
		runWorkload()
	}

	res := Result{
		Scenario:        sc.Name,
		Description:     sc.Description,
		Seed:            seed,
		N:               sc.N,
		Rounds:          total,
		Published:       len(published),
		FinalOnline:     en.Population().OnlineCount(),
		Messages:        int64(reg.Counter(simnet.MetricMessages)),
		MessagesOffline: int64(reg.Counter(simnet.MetricMessagesOffline)),
		MessagesDropped: int64(reg.Counter(simnet.MetricMessagesDropped)),
		Bytes:           int64(reg.Counter(simnet.MetricBytes)),
		Pushes:          int64(reg.Counter(gossip.MetricPushes)),
		PushBytes:       int64(reg.Counter(gossip.MetricPushBytes)),
		Duplicates:      int64(reg.Counter(gossip.MetricDuplicates)),
		PullRequests:    int64(reg.Counter(gossip.MetricPullRequests)),
		PullUpdates:     int64(reg.Counter(gossip.MetricPullUpdates)),
		Snapshots:       int64(reg.Counter(gossip.MetricSnapshots)),
		SnapshotBytes:   int64(reg.Counter(gossip.MetricSnapshotBytes)),
		LogCompacted:    int64(reg.Counter(gossip.MetricLogCompacted)),
	}
	if sc.Config.LinkBudget > 0 {
		for _, p := range net.Peers {
			if n := p.PeakPendingPerDest(); n > res.SenderPeakPending {
				res.SenderPeakPending = n
			}
		}
	}
	for _, u := range published {
		res.Updates = append(res.Updates, u.ID())
	}
	res.Invariants = checkInvariants(sc, net, en, published, applied, res)
	res.Passed = true
	for _, inv := range res.Invariants {
		res.Passed = res.Passed && inv.Passed
	}
	return res, nil
}
