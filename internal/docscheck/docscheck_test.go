package docscheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	pushpull "github.com/p2pgossip/update"
	"github.com/p2pgossip/update/internal/metrics"
)

// godocPackages are the packages whose exported surface must be fully
// documented. The public package is the API users program against; the
// internal ones are the protocol core that every adapter builds on.
var godocPackages = []string{
	".",
	"internal/engine",
	"internal/store",
	"internal/live",
	"internal/scenario",
	"internal/wal",
}

func repoRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("resolving repo root: %v", err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("repo root %s has no go.mod: %v", root, err)
	}
	return root
}

func readDoc(t *testing.T, rel string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join(repoRoot(t), rel))
	if err != nil {
		t.Fatalf("reading %s: %v", rel, err)
	}
	return string(b)
}

// TestExportedIdentifiersAreDocumented is the godoc lint: every exported
// top-level declaration in the core packages needs a doc comment, and every
// package needs a package comment. Methods on unexported receiver types are
// exempt — they are not part of the rendered godoc surface (they only show
// through the interfaces they satisfy, which carry the contract docs).
func TestExportedIdentifiersAreDocumented(t *testing.T) {
	root := repoRoot(t)
	var missing []string
	for _, dir := range godocPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, filepath.Join(root, dir), func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing %s: %v", dir, err)
		}
		for name, pkg := range pkgs {
			hasPkgDoc := false
			for _, f := range pkg.Files {
				if f.Doc != nil {
					hasPkgDoc = true
					break
				}
			}
			if !hasPkgDoc {
				missing = append(missing, fmt.Sprintf("%s: package %s has no package comment", dir, name))
			}
			for _, f := range pkg.Files {
				for _, decl := range f.Decls {
					for _, m := range undocumented(decl) {
						pos := fset.Position(decl.Pos())
						missing = append(missing, fmt.Sprintf("%s: %s (%s:%d)",
							dir, m, filepath.Base(pos.Filename), pos.Line))
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("undocumented export: %s", m)
	}
}

// undocumented returns descriptions of the exported identifiers declared by
// decl that lack a doc comment.
func undocumented(decl ast.Decl) []string {
	var out []string
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
			kind := "func"
			if d.Recv != nil {
				kind = "method"
			}
			out = append(out, kind+" "+d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					out = append(out, "type "+s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, n := range s.Names {
					if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						out = append(out, "value "+n.Name)
					}
				}
			}
		}
	}
	return out
}

// receiverExported reports whether a function is either free-standing or a
// method on an exported type.
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	typ := fd.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver: T[P]
			typ = x.X
		case *ast.IndexListExpr: // generic receiver: T[P1, P2]
			typ = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return true
		}
	}
}

// TestOperationsDocCoversEveryCounter fails when a counter the node can
// report is missing from docs/OPERATIONS.md — either under its registry
// name (`live.push.sent`) or under the name /metrics exposes it as
// (pushpull_live_push_sent_total). Adding a counter to live.CounterNames or
// pushpull.MetricNames without documenting it breaks this test.
func TestOperationsDocCoversEveryCounter(t *testing.T) {
	doc := readDoc(t, filepath.Join("docs", "OPERATIONS.md"))
	names := pushpull.MetricNames()
	if len(names) < 20 {
		t.Fatalf("MetricNames returned only %d names; the canonical list is broken", len(names))
	}
	for _, name := range names {
		if !strings.Contains(doc, "`"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document counter `%s`", name)
		}
		exposed := "pushpull_" + metrics.SanitizeMetricName(name) + "_total"
		if !strings.Contains(doc, exposed) {
			t.Errorf("docs/OPERATIONS.md does not mention %s, the /metrics name of `%s`", exposed, name)
		}
	}
}

// TestOperationsDocCoversEveryFlag parses cmd/pushpulld/main.go and fails
// when a registered command-line flag is not documented (as `-name`) in
// docs/OPERATIONS.md.
func TestOperationsDocCoversEveryFlag(t *testing.T) {
	doc := readDoc(t, filepath.Join("docs", "OPERATIONS.md"))
	flags := daemonFlags(t)
	if len(flags) < 10 {
		t.Fatalf("parsed only %d flags from cmd/pushpulld/main.go; the extraction is broken: %v",
			len(flags), flags)
	}
	for _, name := range flags {
		if !strings.Contains(doc, "`-"+name+"`") {
			t.Errorf("docs/OPERATIONS.md does not document pushpulld flag `-%s`", name)
		}
	}
}

// daemonFlags extracts every flag name registered in cmd/pushpulld/main.go:
// calls of the form fs.String("name", ...), fs.Duration("name", ...) and so
// on, matched syntactically.
func daemonFlags(t *testing.T) []string {
	t.Helper()
	src := filepath.Join(repoRoot(t), "cmd", "pushpulld", "main.go")
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, src, nil, 0)
	if err != nil {
		t.Fatalf("parsing %s: %v", src, err)
	}
	registrars := map[string]bool{
		"String": true, "Bool": true, "Int": true, "Int64": true,
		"Uint": true, "Uint64": true, "Float64": true, "Duration": true,
	}
	var flags []string
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) < 3 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !registrars[sel.Sel.Name] {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok || (recv.Name != "fs" && recv.Name != "flag") {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		name, err := strconv.Unquote(lit.Value)
		if err == nil && name != "" {
			flags = append(flags, name)
		}
		return true
	})
	return flags
}

// TestReadmeLinksTheDocSurface keeps the front door honest: the top-level
// README must exist and point at the design document and the operations
// guide, and the operations guide must exist at the path the README links.
func TestReadmeLinksTheDocSurface(t *testing.T) {
	readme := readDoc(t, "README.md")
	for _, want := range []string{"DESIGN.md", "docs/OPERATIONS.md", "cmd/pushpulld", "pushpull.Open"} {
		if !strings.Contains(readme, want) {
			t.Errorf("README.md does not mention %s", want)
		}
	}
}
