// Package docscheck pins the documentation surface to the code it
// describes. Its tests are drift guards, run by the ordinary `go test
// ./...` CI step:
//
//   - every exported identifier in the core packages (the public pushpull
//     package, internal/engine, internal/store, internal/live,
//     internal/scenario) must carry a doc comment, and every one of those
//     packages must have a package comment;
//   - every counter in pushpull.MetricNames must be documented in
//     docs/OPERATIONS.md under both its registry name and its Prometheus
//     exposition name;
//   - every command-line flag pushpulld registers must be documented in
//     docs/OPERATIONS.md.
//
// Adding a counter, a flag, or an exported symbol without documenting it
// fails the build, so the operational docs cannot silently rot.
package docscheck
