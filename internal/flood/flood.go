// Package flood provides the flooding baselines the paper compares against
// in §5.6 and Table 2, expressed — as the paper argues they can be — as
// special cases of the generic push model:
//
//   - Gnutella: flooding with fixed fanout and TTL; duplicate avoidance
//     discards repeated receipts but sends no partial list.
//   - Partial list: Gnutella plus the paper's flooding-list optimisation.
//   - Haas et al. GOSSIP1(p, k): pure flood for k rounds, then forwarding
//     probability p.
//   - Our scheme: decaying PF(t) with partial lists.
//
// It also implements *pure* flooding without duplicate avoidance as its own
// node type (every received copy is forwarded again, exponential blow-up),
// which cannot be expressed as a single-push special case.
package flood

import (
	"fmt"

	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/simnet"
)

// GnutellaConfig returns the gossip configuration equivalent to Gnutella
// flooding with duplicate avoidance: PF = 1 for ttl rounds then 0 (§4.1),
// no partial list, push only.
func GnutellaConfig(r int, fr float64, ttl int) gossip.Config {
	cfg := gossip.DefaultConfig(r)
	cfg.Fr = fr
	cfg.NewPF = func() pf.Func { return pf.TTL{Rounds: ttl} }
	cfg.PartialList = false
	cfg.PullAttempts = 0
	cfg.PullTimeout = 0
	return cfg
}

// PartialListConfig is Gnutella plus the paper's partial flooding list.
func PartialListConfig(r int, fr float64, ttl int) gossip.Config {
	cfg := GnutellaConfig(r, fr, ttl)
	cfg.PartialList = true
	return cfg
}

// HaasConfig returns Haas et al.'s GOSSIP1(p, k): certain forwarding for the
// first k rounds, probability p afterwards; no partial list.
func HaasConfig(r int, fr, p float64, k int) gossip.Config {
	cfg := gossip.DefaultConfig(r)
	cfg.Fr = fr
	cfg.NewPF = func() pf.Func { return pf.Haas{P1: p, K: k} }
	cfg.PartialList = false
	cfg.PullAttempts = 0
	cfg.PullTimeout = 0
	return cfg
}

// OursConfig returns the paper's scheme: geometrically decaying PF(t) with
// partial lists (push phase only, for baseline comparisons).
func OursConfig(r int, fr, base float64) gossip.Config {
	cfg := gossip.DefaultConfig(r)
	cfg.Fr = fr
	cfg.NewPF = func() pf.Func { return pf.Geometric{Base: base} }
	cfg.PartialList = true
	cfg.PullAttempts = 0
	cfg.PullTimeout = 0
	return cfg
}

// FloodMsg is the payload of the pure-flooding baseline: just the hop
// counter.
type FloodMsg struct {
	// T is the hop count of this copy.
	T int
}

// MetricFloodForwards counts pure-flood forwarding events.
const MetricFloodForwards = "flood_forwards"

// PureFloodNode floods without duplicate avoidance: *every* received copy
// within the TTL is forwarded to a fresh random fanout, reproducing the
// exponential message growth of §5.6's geometric series. A hard message cap
// keeps simulations finite.
type PureFloodNode struct {
	id     int
	fanout int
	ttl    int
	cap    int
	aware  bool
	sent   int
}

var _ simnet.Node = (*PureFloodNode)(nil)

// NewPureFloodNetwork builds n pure-flood nodes with the given fanout, TTL,
// and per-node send cap (≤0 means a generous default of 10·fanout).
func NewPureFloodNetwork(n, fanout, ttl, sendCap int) ([]simnet.Node, []*PureFloodNode, error) {
	if n <= 0 || fanout <= 0 || ttl <= 0 {
		return nil, nil, fmt.Errorf("flood: n=%d fanout=%d ttl=%d must be positive", n, fanout, ttl)
	}
	if sendCap <= 0 {
		sendCap = 10 * fanout
	}
	nodes := make([]simnet.Node, n)
	raw := make([]*PureFloodNode, n)
	for i := 0; i < n; i++ {
		raw[i] = &PureFloodNode{id: i, fanout: fanout, ttl: ttl, cap: sendCap}
		nodes[i] = raw[i]
	}
	return nodes, raw, nil
}

// Aware reports whether the node has received the flood.
func (f *PureFloodNode) Aware() bool { return f.aware }

// Start initiates the flood from this node.
func (f *PureFloodNode) Start(env *simnet.Env) {
	f.aware = true
	f.forward(env, 0)
}

// Init implements simnet.Node.
func (f *PureFloodNode) Init(*simnet.Env) {}

// CameOnline implements simnet.Node.
func (f *PureFloodNode) CameOnline(*simnet.Env) {}

// Tick implements simnet.Node.
func (f *PureFloodNode) Tick(*simnet.Env) {}

// HandleMessage implements simnet.Node: every copy is re-flooded while the
// TTL lasts — no duplicate suppression.
func (f *PureFloodNode) HandleMessage(env *simnet.Env, msg simnet.Message) {
	m, ok := msg.Payload.(FloodMsg)
	if !ok {
		return
	}
	f.aware = true
	if m.T+1 < f.ttl {
		f.forward(env, m.T+1)
	}
}

func (f *PureFloodNode) forward(env *simnet.Env, t int) {
	for i := 0; i < f.fanout && f.sent < f.cap; i++ {
		target := env.RNG().Intn(env.N() - 1)
		if target >= f.id {
			target++
		}
		env.Send(target, FloodMsg{T: t}, 16)
		env.Metrics().Inc(MetricFloodForwards)
		f.sent++
	}
}

// CountAware returns the number of aware pure-flood nodes.
func CountAware(nodes []*PureFloodNode) int {
	n := 0
	for _, node := range nodes {
		if node.aware {
			n++
		}
	}
	return n
}
