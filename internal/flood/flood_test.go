package flood

import (
	"testing"

	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/simnet"
)

// runScheme floods one update through a 200-peer fully-online network under
// the given configuration and returns (messages per peer, aware count).
func runScheme(t *testing.T, cfg gossip.Config, seed int64) (float64, int) {
	t.Helper()
	const n = 200
	net, err := gossip.BuildNetwork(n, cfg, 0, seed)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes: net.Nodes, InitialOnline: n, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	u := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v"))
	en.Run(60)
	return en.Metrics().Counter(simnet.MetricMessages) / n, net.CountAware(u.ID())
}

// TestTable2SimulatedOrdering cross-validates the analytical Table 2 with
// the simulator: the message-cost ordering
// ours < Haas < partial list ≤ Gnutella must hold, with high coverage for
// the non-decaying schemes.
func TestTable2SimulatedOrdering(t *testing.T) {
	const (
		r  = 200
		fr = 0.02 // fanout 4, as in Table 2 top (scaled population)
	)
	avg := func(mk func() gossip.Config) (float64, float64) {
		var msgs, aware float64
		const trials = 5
		for s := int64(0); s < trials; s++ {
			m, a := runScheme(t, mk(), 100+s)
			msgs += m
			aware += float64(a)
		}
		return msgs / trials, aware / trials / r
	}

	gnutellaMsgs, gnutellaAware := avg(func() gossip.Config { return GnutellaConfig(r, fr, 12) })
	partialMsgs, partialAware := avg(func() gossip.Config { return PartialListConfig(r, fr, 12) })
	haasMsgs, haasAware := avg(func() gossip.Config { return HaasConfig(r, fr, 0.8, 2) })
	oursMsgs, oursAware := avg(func() gossip.Config { return OursConfig(r, fr, 0.9) })

	t.Logf("msgs/peer: gnutella=%.2f partial=%.2f haas=%.2f ours=%.2f",
		gnutellaMsgs, partialMsgs, haasMsgs, oursMsgs)
	t.Logf("aware:     gnutella=%.2f partial=%.2f haas=%.2f ours=%.2f",
		gnutellaAware, partialAware, haasAware, oursAware)

	if gnutellaAware < 0.95 || partialAware < 0.95 || haasAware < 0.9 {
		t.Fatalf("baseline coverage too low")
	}
	if oursAware < 0.75 {
		t.Fatalf("our scheme coverage %g collapsed", oursAware)
	}
	if !(oursMsgs < haasMsgs && haasMsgs < gnutellaMsgs) {
		t.Fatalf("ordering violated: ours=%g haas=%g gnutella=%g",
			oursMsgs, haasMsgs, gnutellaMsgs)
	}
	if partialMsgs > gnutellaMsgs {
		t.Fatalf("partial list increased cost: %g > %g", partialMsgs, gnutellaMsgs)
	}
	// Gnutella with duplicate avoidance sends ≈ fanout per online peer
	// (§5.6 closed form): everyone who gets the rumor pushes once.
	if gnutellaMsgs < 2.5 || gnutellaMsgs > 4.5 {
		t.Fatalf("Gnutella msgs/peer = %g, closed form says ≈ 4", gnutellaMsgs)
	}
}

func TestPureFloodExplodesVersusDuplicateAvoidance(t *testing.T) {
	const n = 200
	nodes, raw, err := NewPureFloodNetwork(n, 4, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{Nodes: nodes, InitialOnline: n, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	raw[0].Start(simnet.NewTestEnv(en, 0))
	en.Run(20)
	pureMsgs := en.Metrics().Counter(simnet.MetricMessages) / n

	gnutellaMsgs, _ := runScheme(t, GnutellaConfig(n, 0.02, 6), 3)
	if pureMsgs <= 2*gnutellaMsgs {
		t.Fatalf("pure flooding (%g/peer) should dwarf duplicate avoidance (%g/peer)",
			pureMsgs, gnutellaMsgs)
	}
	if got := CountAware(raw); got < n*9/10 {
		t.Fatalf("pure flood aware = %d/%d", got, n)
	}
}

func TestPureFloodValidation(t *testing.T) {
	for _, bad := range [][3]int{{0, 4, 6}, {10, 0, 6}, {10, 4, 0}} {
		if _, _, err := NewPureFloodNetwork(bad[0], bad[1], bad[2], 0); err == nil {
			t.Fatalf("NewPureFloodNetwork(%v) should error", bad)
		}
	}
}

func TestPureFloodCapBoundsMessages(t *testing.T) {
	const n = 100
	nodes, raw, err := NewPureFloodNetwork(n, 10, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{Nodes: nodes, InitialOnline: n, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	raw[0].Start(simnet.NewTestEnv(en, 0))
	en.Run(30)
	if got := en.Metrics().Counter(simnet.MetricMessages); got > float64(n*5) {
		t.Fatalf("cap violated: %g messages > %d", got, n*5)
	}
}

func TestPureFloodIgnoresForeignPayloads(t *testing.T) {
	nodes, raw, err := NewPureFloodNetwork(3, 2, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{Nodes: nodes, InitialOnline: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	en.Step()
	raw[1].HandleMessage(simnet.NewTestEnv(en, 1), simnet.Message{Payload: "junk"})
	if raw[1].Aware() {
		t.Fatal("foreign payload marked node aware")
	}
}

func TestConfigsAreValid(t *testing.T) {
	for name, cfg := range map[string]gossip.Config{
		"gnutella": GnutellaConfig(1000, 0.004, 7),
		"partial":  PartialListConfig(1000, 0.004, 7),
		"haas":     HaasConfig(1000, 0.004, 0.8, 2),
		"ours":     OursConfig(1000, 0.004, 0.9),
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("%s config invalid: %v", name, err)
		}
		if cfg.PullAttempts != 0 {
			t.Fatalf("%s: baselines must be push-only", name)
		}
	}
}
