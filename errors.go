package pushpull

import (
	"errors"
	"fmt"
)

// The package classifies failures with a small taxonomy of sentinel errors.
// Returned errors wrap these sentinels (plus operation context), so callers
// branch with errors.Is:
//
//	if _, err := node.Publish(ctx, k, v); errors.Is(err, pushpull.ErrClosed) { ... }
var (
	// ErrClosed reports an operation on a Node after Close.
	ErrClosed = errors.New("pushpull: node closed")
	// ErrNoPeers reports an operation that needs remote replicas on a Node
	// that knows none.
	ErrNoPeers = errors.New("pushpull: no known peers")
	// ErrInvalidConfig reports an unusable option combination passed to
	// Open.
	ErrInvalidConfig = errors.New("pushpull: invalid configuration")
	// ErrNoTransport reports an Open call with no transport option; it also
	// matches ErrInvalidConfig.
	ErrNoTransport = fmt.Errorf("%w: exactly one of WithTCP, WithHub, or WithTransport is required", ErrInvalidConfig)
	// ErrSnapshot reports a snapshot that could not be written or restored.
	ErrSnapshot = errors.New("pushpull: snapshot")
	// ErrWAL reports a write-ahead-log failure: recovery could not restore
	// the logged state at Open, or a write could not be made durable — the
	// update applied locally but Publish/Delete refuse to acknowledge it.
	ErrWAL = errors.New("pushpull: wal")
)
