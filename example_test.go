package pushpull_test

import (
	"context"
	"fmt"
	"time"

	pushpull "github.com/p2pgossip/update"
)

// ExampleOpen builds a three-node in-memory cluster, publishes an update,
// and observes it arriving on another node's Watch stream.
func ExampleOpen() {
	ctx := context.Background()
	hub := pushpull.NewHub()
	addrs := []string{"r1", "r2", "r3"}
	var nodes []*pushpull.Node
	for i, addr := range addrs {
		node, err := pushpull.Open(
			pushpull.WithHub(hub, addr),
			pushpull.WithPullInterval(5*time.Millisecond),
			pushpull.WithSeed(int64(i)+1),
			pushpull.WithPeers(addrs...),
		)
		if err != nil {
			fmt.Println("open:", err)
			return
		}
		nodes = append(nodes, node)
		defer node.Close(ctx)
	}

	events, err := nodes[2].Watch(ctx, "")
	if err != nil {
		fmt.Println("watch:", err)
		return
	}
	if _, err := nodes[0].Publish(ctx, "motd", []byte("hello")); err != nil {
		fmt.Println("publish:", err)
		return
	}
	select {
	case ev := <-events:
		fmt.Printf("r3 sees %s=%s\n", ev.Update.Key, ev.Update.Value)
	case <-time.After(2 * time.Second):
		fmt.Println("timed out")
	}
	// Output: r3 sees motd=hello
}

// ExampleAnalyzePush evaluates the paper's analytical push model for its
// headline scenario: 10000 replicas, 1000 online, plain flooding.
func ExampleAnalyzePush() {
	res, err := pushpull.AnalyzePush(pushpull.PushParams{
		R: 10_000, ROn0: 1000, Sigma: 0.95, Fr: 0.01,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("F_aware=%.2f msgs/online peer=%.0f\n",
		res.FinalAware(), res.MessagesPerOnlinePeer())
	// Output: F_aware=1.00 msgs/online peer=95
}

// ExamplePullSuccess shows the §4.3 pull analysis: the attempts needed for
// high-probability retrieval at 10% availability.
func ExamplePullSuccess() {
	p := pushpull.PullSuccess(100, 1.0, 1000, 66)
	fmt.Printf("66 attempts at 10%% availability: %.4f\n", p)
	// Output: 66 attempts at 10% availability: 0.9990
}
