package pushpull_test

import (
	"fmt"
	"time"

	pushpull "github.com/p2pgossip/update"
)

// ExampleNewReplica builds a three-replica in-memory cluster, publishes an
// update, and reads it back from another replica.
func ExampleNewReplica() {
	hub := pushpull.NewHub()
	addrs := []string{"r1", "r2", "r3"}
	var replicas []*pushpull.Replica
	for i, addr := range addrs {
		tr, err := hub.Attach(addr)
		if err != nil {
			fmt.Println("attach:", err)
			return
		}
		cfg := pushpull.DefaultReplicaConfig()
		cfg.PullInterval = 5 * time.Millisecond
		cfg.Seed = int64(i) + 1
		r, err := pushpull.NewReplica(cfg, tr)
		if err != nil {
			fmt.Println("new replica:", err)
			return
		}
		replicas = append(replicas, r)
	}
	for _, r := range replicas {
		r.AddPeers(addrs...)
		r.Start()
		defer r.Stop()
	}

	replicas[0].Publish("motd", []byte("hello"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if rev, ok := replicas[2].Get("motd"); ok {
			fmt.Printf("r3 sees motd=%s\n", rev.Value)
			return
		}
		time.Sleep(time.Millisecond)
	}
	fmt.Println("timed out")
	// Output: r3 sees motd=hello
}

// ExampleAnalyzePush evaluates the paper's analytical push model for its
// headline scenario: 10000 replicas, 1000 online, plain flooding.
func ExampleAnalyzePush() {
	res, err := pushpull.AnalyzePush(pushpull.PushParams{
		R: 10_000, ROn0: 1000, Sigma: 0.95, Fr: 0.01,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("F_aware=%.2f msgs/online peer=%.0f\n",
		res.FinalAware(), res.MessagesPerOnlinePeer())
	// Output: F_aware=1.00 msgs/online peer=95
}

// ExamplePullSuccess shows the §4.3 pull analysis: the attempts needed for
// high-probability retrieval at 10% availability.
func ExamplePullSuccess() {
	p := pushpull.PullSuccess(100, 1.0, 1000, 66)
	fmt.Printf("66 attempts at 10%% availability: %.4f\n", p)
	// Output: 66 attempts at 10% availability: 0.9990
}
