package pushpull

import (
	"github.com/p2pgossip/update/internal/analytic"
	"github.com/p2pgossip/update/internal/live"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
)

// This file re-exports the layer types behind the Node API and keeps the
// pre-Node constructors compiling. New code should open a Node; the
// deprecated shims remain thin forwards to the live runtime.

// Live runtime types.
type (
	// Replica is a live protocol node.
	//
	// Deprecated: open a Node instead; Replica remains for code written
	// against the pre-Node API.
	Replica = live.Replica
	// ReplicaConfig parameterises a Replica.
	//
	// Deprecated: configure a Node with Options instead.
	ReplicaConfig = live.Config
	// Transport moves protocol envelopes between replicas.
	Transport = live.Transport
	// Hub is an in-memory transport fabric for tests and examples.
	Hub = live.Hub
	// TCPTransport is the production transport.
	TCPTransport = live.TCPTransport
	// QueryOutcome is the result of Node.Query (§4.4): the freshest
	// revision among the consulted replicas.
	QueryOutcome = live.QueryOutcome
)

// Data model types.
type (
	// Update is one replicated mutation (put or tombstone delete).
	Update = store.Update
	// Revision is one coexisting version branch of an item.
	Revision = store.Revision
	// Store is a replica's local versioned store. It is the store.Backend
	// contract: live nodes run the lock-striped sharded implementation, and
	// the single-lock reference store satisfies it too.
	Store = store.Backend
	// Clock is a vector clock summarising received updates.
	Clock = version.Clock
	// History is an item's version history.
	History = version.History
)

// Forwarding-probability schedules (the paper's PF(t)).
type (
	// PFFunc maps a push round to a forwarding probability.
	PFFunc = pf.Func
	// PFConstant is PF(t) = C.
	PFConstant = pf.Constant
	// PFGeometric is PF(t) = Base^t.
	PFGeometric = pf.Geometric
	// PFAffineGeometric is PF(t) = A·B^t + C (the paper's Fig. 5 schedule).
	PFAffineGeometric = pf.AffineGeometric
	// PFAdaptive is the self-tuning schedule driven by duplicate counts and
	// partial-list length (§6).
	PFAdaptive = pf.Adaptive
)

// Analytical model types.
type (
	// PushParams parameterises the push-phase recursion (§4.2).
	PushParams = analytic.PushParams
	// PushResult is the resulting trajectory.
	PushResult = analytic.PushResult
)

// NewReplica builds a live replica on the given transport.
//
// Deprecated: use Open with a transport option; it returns a Node with
// context-aware operations, Watch streams, and graceful shutdown.
func NewReplica(cfg ReplicaConfig, tr Transport) (*Replica, error) {
	return live.NewReplica(cfg, tr)
}

// DefaultReplicaConfig returns a production-ready configuration: fanout 5,
// PF(t) = 0.9^t, partial lists, eager + periodic pull.
//
// Deprecated: Open starts from these defaults already; adjust with Options.
func DefaultReplicaConfig() ReplicaConfig { return live.DefaultReplicaConfig() }

// NewHub returns an in-memory transport fabric; attach nodes to it with
// WithHub.
func NewHub() *Hub { return live.NewHub() }

// ListenTCP starts a TCP transport on addr ("host:0" picks a free port).
// Most callers want WithTCP instead; ListenTCP remains for wiring a
// transport explicitly via WithTransport.
func ListenTCP(addr string) (*TCPTransport, error) { return live.ListenTCP(addr) }

// NewAdaptivePF returns the §6 self-tuning forwarding probability with the
// given base.
func NewAdaptivePF(base float64) *PFAdaptive { return pf.NewAdaptive(base) }

// AnalyzePush evaluates the paper's push-phase recursion.
func AnalyzePush(p PushParams) (PushResult, error) { return analytic.Push(p) }

// PullSuccess returns the §4.3 pull success probability: the chance that a
// replica coming online obtains the update within `attempts` random pulls
// when fAware of the rOn online replicas (out of r) hold it.
func PullSuccess(rOn int, fAware float64, r, attempts int) float64 {
	return analytic.PullSuccess(rOn, fAware, r, attempts)
}
