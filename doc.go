// Package pushpull is the public API of a hybrid push/pull epidemic update
// protocol for heavily replicated peer-to-peer systems in which replicas are
// mostly offline, after "Updates in Highly Unreliable, Replicated
// Peer-to-Peer Systems" (Datta, Hauswirth, Aberer — ICDCS 2003).
//
// The package exposes three layers:
//
//   - The live runtime: Node handles exchanging updates over pluggable
//     transports (in-memory for tests, TCP for deployments). Updates spread
//     by constrained flooding with partial flooding lists and decaying
//     forwarding probabilities; replicas that were offline reconcile by
//     vector-clock anti-entropy when they return.
//   - The analytical model of the protocol's push and pull phases — the
//     tool that generates every figure and table of the paper.
//   - The discrete simulator used to cross-validate the model and to
//     explore parameters (churn processes, failure injection, baselines).
//
// The live runtime and the simulator are thin adapters over one shared
// protocol engine (internal/engine), so simulated scenarios exercise
// exactly the state machine that runs in production.
//
// The live runtime is driven through Node, a lifecycle-managed handle built
// with functional options:
//
//	node, err := pushpull.Open(
//		pushpull.WithTCP("127.0.0.1:0"),
//		pushpull.WithPeers("10.0.0.2:7001", "10.0.0.3:7001"),
//	)
//	if err != nil { ... }
//	defer node.Close(context.Background())
//
//	ctx := context.Background()
//	if _, err := node.Publish(ctx, "greeting", []byte("hello")); err != nil { ... }
//
// Applied updates, tombstones, and conflicting revisions can be observed as
// a stream:
//
//	events, _ := node.Watch(ctx, "")
//	for ev := range events {
//		log.Printf("%s %s via %s", ev.Kind, ev.Update.Key, ev.Source)
//	}
//
// Operational counters flow into a metrics registry passed with
// WithMetrics; failures are classified by the package-level sentinel errors
// (ErrClosed, ErrNoPeers, ErrInvalidConfig, ...) and match with errors.Is.
// MetricNames lists every counter a Node can emit.
//
// For deployments that want a process rather than a library, cmd/pushpulld
// serves the full Node API over HTTP — PUT/GET/DELETE key-value routes, a
// server-sent-events watch stream, §4.4 queries, snapshot
// download/restore, and Prometheus /metrics — with graceful
// snapshot-on-shutdown; see the "Serving surface" section of DESIGN.md and
// examples/httpcluster for a curl-level session.
//
// See the examples/ directory for complete programs, DESIGN.md for the
// architecture and the migration table from the legacy Replica API, and
// EXPERIMENTS.md for the paper-versus-measured record.
package pushpull
