package pushpull_test

import (
	"testing"
	"time"

	pushpull "github.com/p2pgossip/update"
)

// TestPublicAPIQuickstart exercises the README quick-start path end to end
// through the facade only.
func TestPublicAPIQuickstart(t *testing.T) {
	hub := pushpull.NewHub()
	const n = 5
	replicas := make([]*pushpull.Replica, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = string(rune('a' + i))
		tr, err := hub.Attach(addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		cfg := pushpull.DefaultReplicaConfig()
		cfg.PullInterval = 5 * time.Millisecond
		cfg.Seed = int64(i) + 1
		r, err := pushpull.NewReplica(cfg, tr)
		if err != nil {
			t.Fatal(err)
		}
		replicas[i] = r
	}
	for _, r := range replicas {
		r.AddPeers(addrs...)
		r.Start()
		defer r.Stop()
	}
	replicas[0].Publish("greeting", []byte("hello"))

	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, r := range replicas {
			if rev, ok := r.Get("greeting"); !ok || string(rev.Value) != "hello" {
				done = false
				break
			}
		}
		if done {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("facade quickstart did not converge")
}

func TestPublicAnalyticAPI(t *testing.T) {
	res, err := pushpull.AnalyzePush(pushpull.PushParams{
		R: 10000, ROn0: 1000, Sigma: 0.95, Fr: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAware() < 0.99 {
		t.Fatalf("FinalAware = %g", res.FinalAware())
	}
	if p := pushpull.PullSuccess(100, 1, 1000, 66); p < 0.999 {
		t.Fatalf("PullSuccess = %g", p)
	}
}

func TestPublicAdaptivePF(t *testing.T) {
	ad := pushpull.NewAdaptivePF(1.0)
	before := ad.P(0)
	ad.ObserveDuplicate()
	if ad.P(1) >= before {
		t.Fatal("adaptive PF did not decay")
	}
}
