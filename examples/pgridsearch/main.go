// Pgridsearch composes the two halves of the paper: a P-Grid network
// provides the *access structure* (trie-partitioned key space with greedy
// prefix routing), and the gossip protocol provides *updates* within each
// partition's replica group. A query routes to a responsible peer; an
// update gossips through the responsible group; subsequent queries see the
// new value.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/pgrid"
	"github.com/p2pgossip/update/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		peers = 128
		depth = 4 // 16 partitions, 8 replicas each
	)
	grid, err := pgrid.Build(peers, depth, 3, 7)
	if err != nil {
		return err
	}
	fmt.Printf("P-Grid: %d peers, %d partitions, replica groups of %d\n",
		peers, grid.Partitions(), len(grid.ReplicaGroup(grid.Peers[0].Path)))

	// The replica group responsible for our key runs the gossip protocol.
	const key = "catalogue/price"
	group := grid.GroupOfKey(key)
	fmt.Printf("key %q lives at path %s, replicas %v\n",
		key, pgrid.KeyPath(key, depth), group)

	cfg := gossip.DefaultConfig(len(group))
	cfg.Fr = 0.4
	cfg.NewPF = nil
	cfg.PullAttempts = 2
	cfg.PullTimeout = 10
	groupNet, err := gossip.BuildNetwork(len(group), cfg, 0, 7)
	if err != nil {
		return err
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         groupNet.Nodes,
		InitialOnline: len(group),
		Seed:          7,
	})
	if err != nil {
		return err
	}
	en.Step()

	// A group member publishes the value; gossip spreads it.
	groupNet.Peers[0].Publish(simnet.NewTestEnv(en, 0), key, []byte("42 CHF"))
	en.Run(20)
	if !groupNet.Converged() {
		return fmt.Errorf("replica group did not converge")
	}
	fmt.Println("update gossiped through the replica group")

	// Queries route from random origins to the responsible partition and
	// read from whichever group member the route lands on.
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 5; q++ {
		origin := rng.Intn(peers)
		route, err := grid.Route(origin, key, nil, rng)
		if err != nil {
			return err
		}
		// Map the grid peer back to its index inside the gossip group.
		member := -1
		for i, id := range group {
			if id == route.Target {
				member = i
				break
			}
		}
		if member < 0 {
			return fmt.Errorf("route ended at peer %d outside the replica group", route.Target)
		}
		rev, ok := groupNet.Peers[member].Store().Get(key)
		if !ok {
			return fmt.Errorf("responsible peer %d has no value", route.Target)
		}
		fmt.Printf("query from peer %3d: %d hops → peer %3d: %s = %q\n",
			origin, route.Hops, route.Target, key, rev.Value)
	}

	// Publish a new price and query again.
	groupNet.Peers[3].Publish(simnet.NewTestEnv(en, 3), key, []byte("39 CHF"))
	en.Run(20)
	route, err := grid.Route(rng.Intn(peers), key, nil, rng)
	if err != nil {
		return err
	}
	for i, id := range group {
		if id == route.Target {
			rev, _ := groupNet.Peers[i].Store().Get(key)
			fmt.Printf("after update: %s = %q (via peer %d)\n", key, rev.Value, route.Target)
		}
	}
	return nil
}
