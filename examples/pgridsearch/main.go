// Pgridsearch composes the two halves of the paper: a P-Grid network
// provides the *access structure* (trie-partitioned key space with greedy
// prefix routing), and the live gossip runtime provides *updates* within
// each partition's replica group. A query routes to a responsible peer; an
// update gossips through the responsible group's nodes; subsequent queries
// see the new value.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	pushpull "github.com/p2pgossip/update"
	"github.com/p2pgossip/update/internal/pgrid"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const (
		peers = 128
		depth = 4 // 16 partitions, 8 replicas each
	)
	grid, err := pgrid.Build(peers, depth, 3, 7)
	if err != nil {
		return err
	}
	fmt.Printf("P-Grid: %d peers, %d partitions, replica groups of %d\n",
		peers, grid.Partitions(), len(grid.ReplicaGroup(grid.Peers[0].Path)))

	// The replica group responsible for our key runs the live protocol on
	// an in-memory hub; each group member is one Node addressed by its
	// grid peer id.
	const key = "catalogue/price"
	group := grid.GroupOfKey(key)
	fmt.Printf("key %q lives at path %s, replicas %v\n",
		key, pgrid.KeyPath(key, depth), group)

	hub := pushpull.NewHub()
	addrs := make([]string, len(group))
	byGridID := make(map[int]*pushpull.Node, len(group))
	nodes := make([]*pushpull.Node, len(group))
	for i, id := range group {
		addrs[i] = fmt.Sprintf("peer-%03d", id)
	}
	for i, id := range group {
		node, err := pushpull.Open(
			pushpull.WithHub(hub, addrs[i]),
			pushpull.WithFanout(3),
			pushpull.WithPF(nil), // PF(t) = 1: tiny group, flood plainly
			pushpull.WithPullInterval(20*time.Millisecond),
			pushpull.WithSeed(int64(i)+1),
			pushpull.WithPeers(addrs...),
		)
		if err != nil {
			return err
		}
		nodes[i] = node
		byGridID[id] = node
		defer node.Close(ctx)
	}

	// A group member publishes the value; gossip spreads it.
	if _, err := nodes[0].Publish(ctx, key, []byte("42 CHF")); err != nil {
		return err
	}
	if err := waitValue(nodes, key, "42 CHF"); err != nil {
		return err
	}
	fmt.Println("update gossiped through the replica group")

	// Queries route from random origins to the responsible partition and
	// read from whichever group member the route lands on.
	rng := rand.New(rand.NewSource(7))
	for q := 0; q < 5; q++ {
		origin := rng.Intn(peers)
		route, err := grid.Route(origin, key, nil, rng)
		if err != nil {
			return err
		}
		node, ok := byGridID[route.Target]
		if !ok {
			return fmt.Errorf("route ended at peer %d outside the replica group", route.Target)
		}
		rev, ok := node.Get(key)
		if !ok {
			return fmt.Errorf("responsible peer %d has no value", route.Target)
		}
		fmt.Printf("query from peer %3d: %d hops → peer %3d: %s = %q\n",
			origin, route.Hops, route.Target, key, rev.Value)
	}

	// Publish a new price and query again.
	if _, err := nodes[3].Publish(ctx, key, []byte("39 CHF")); err != nil {
		return err
	}
	if err := waitValue(nodes, key, "39 CHF"); err != nil {
		return err
	}
	route, err := grid.Route(rng.Intn(peers), key, nil, rng)
	if err != nil {
		return err
	}
	if node, ok := byGridID[route.Target]; ok {
		rev, _ := node.Get(key)
		fmt.Printf("after update: %s = %q (via peer %d)\n", key, rev.Value, route.Target)
	}
	return nil
}

// waitValue blocks until every node reads want for key.
func waitValue(nodes []*pushpull.Node, key, want string) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, node := range nodes {
			rev, ok := node.Get(key)
			if !ok || string(rev.Value) != want {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("group did not converge on %s=%q", key, want)
}
