// Selftuning reproduces the paper's §6 argument on the live runtime: static
// PF = 1 wastes messages on duplicates; a decaying schedule saves most of
// them; and the *self-tuning* schedule — driven only by locally observed
// duplicates and partial-list lengths — gets close to the tuned schedule
// without any global parameter choice. Each scheme runs an identical live
// cluster with its own metrics registry, so the message economies compare
// directly.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pushpull "github.com/p2pgossip/update"
	"github.com/p2pgossip/update/internal/metrics"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

const (
	replicas = 60
	trials   = 3
)

func run() error {
	schemes := []struct {
		name  string
		newPF func() pushpull.PFFunc
	}{
		{"PF = 1 (plain flooding)", nil},
		{"PF(t) = 0.9^t (tuned by hand)", func() pushpull.PFFunc { return pushpull.PFGeometric{Base: 0.9} }},
		{"adaptive (duplicates + list feedback)", func() pushpull.PFFunc { return pushpull.NewAdaptivePF(1.0) }},
	}

	tb := &metrics.Table{Header: []string{"scheme", "pushes/replica", "duplicates"}}
	totals := make([]float64, len(schemes))
	for si, s := range schemes {
		var pushes, dupes float64
		for trial := 0; trial < trials; trial++ {
			p, d, err := floodOnce(s.newPF, int64(trial)*1000)
			if err != nil {
				return err
			}
			pushes += p
			dupes += d
		}
		totals[si] = pushes / trials
		tb.AddRow(s.name, pushes/trials/replicas, dupes/trials)
	}
	fmt.Printf("one update across a live cluster of %d replicas, averaged over %d runs\n\n%s",
		replicas, trials, tb.String())
	if totals[0] <= totals[2] {
		return fmt.Errorf("plain flooding (%.0f pushes) should cost more than adaptive (%.0f)",
			totals[0], totals[2])
	}
	fmt.Println("\nthe adaptive schedule needs no tuning: it throttles itself where")
	fmt.Println("duplicates appear, which is exactly where the rumor is already known.")
	return nil
}

// floodOnce spreads one update through a fresh cluster under the given PF
// schedule and returns the push and duplicate counts.
func floodOnce(newPF func() pushpull.PFFunc, seedBase int64) (pushes, dupes float64, err error) {
	ctx := context.Background()
	hub := pushpull.NewHub()
	reg := pushpull.NewMetrics()
	nodes := make([]*pushpull.Node, replicas)
	addrs := make([]string, replicas)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("replica-%02d", i)
	}
	for i := range nodes {
		node, err := pushpull.Open(
			pushpull.WithHub(hub, addrs[i]),
			pushpull.WithPF(newPF),
			pushpull.WithPullInterval(20*time.Millisecond),
			pushpull.WithSeed(seedBase+int64(i)+1),
			pushpull.WithMetrics(reg),
			pushpull.WithPeers(addrs...),
		)
		if err != nil {
			return 0, 0, err
		}
		nodes[i] = node
		defer node.Close(ctx)
	}

	if _, err := nodes[0].Publish(ctx, "k", []byte("v")); err != nil {
		return 0, 0, err
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		aware := 0
		for _, node := range nodes {
			if _, ok := node.Get("k"); ok {
				aware++
			}
		}
		if aware == replicas {
			// Settle briefly so in-flight forwards are counted too.
			time.Sleep(20 * time.Millisecond)
			return reg.Counter(pushpull.MetricPushSent), reg.Counter(pushpull.MetricPushDuplicate), nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return 0, 0, fmt.Errorf("cluster did not converge")
}
