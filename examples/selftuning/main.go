// Selftuning reproduces the paper's §6 argument experimentally: static
// PF = 1 wastes messages on duplicates; a decaying schedule saves most of
// them; and the *self-tuning* schedule — driven only by locally observed
// duplicates and partial-list lengths — gets close to the tuned schedule
// without any global parameter choice.
package main

import (
	"fmt"
	"log"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		replicas = 400
		online   = 200
		trials   = 5
	)
	schemes := []struct {
		name  string
		newPF func() pf.Func
	}{
		{"PF = 1 (plain flooding)", nil},
		{"PF(t) = 0.9^t (tuned by hand)", func() pf.Func { return pf.Geometric{Base: 0.9} }},
		{"adaptive (duplicates + list feedback)", func() pf.Func { return pf.NewAdaptive(1.0) }},
	}

	tb := &metrics.Table{Header: []string{"scheme", "msgs/online peer", "F_aware", "duplicates"}}
	for _, s := range schemes {
		var msgs, aware, dupes float64
		for trial := 0; trial < trials; trial++ {
			m, a, d, err := floodOnce(replicas, online, s.newPF, int64(trial)+1)
			if err != nil {
				return err
			}
			msgs += m
			aware += a
			dupes += d
		}
		tb.AddRow(s.name, msgs/trials/online, aware/trials, dupes/trials)
	}
	fmt.Printf("one update across %d replicas (%d online), averaged over %d seeds\n\n%s",
		replicas, online, trials, tb.String())
	fmt.Println("\nthe adaptive schedule needs no tuning: it throttles itself where")
	fmt.Println("duplicates appear, which is exactly where the rumor is already known.")
	return nil
}

func floodOnce(replicas, online int, newPF func() pf.Func, seed int64) (msgs, aware, dupes float64, err error) {
	cfg := gossip.DefaultConfig(replicas)
	cfg.Fr = 0.04
	cfg.NewPF = newPF
	cfg.PullAttempts = 0
	cfg.PullTimeout = 0
	net, err := gossip.BuildNetwork(replicas, cfg, 0, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: online,
		Churn:         churn.Bernoulli{Sigma: 0.98},
		Seed:          seed,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	en.Step()
	id := net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v")).ID()
	en.Run(50)
	m := en.Metrics()
	onlineNow := en.Population().OnlineCount()
	frac := 0.0
	if onlineNow > 0 {
		frac = float64(net.CountAwareOnline(id, en)) / float64(onlineNow)
	}
	return m.Counter(simnet.MetricMessages), frac, m.Counter(gossip.MetricDuplicates), nil
}
