// Livecluster runs five nodes over real TCP sockets, publishes updates,
// "crashes" one node (closing it after saving a snapshot), keeps updating
// the survivors, and then restarts the crashed node from its snapshot — it
// reconciles the missed updates by pulling, exactly the paper's offline-peer
// story but with durable local state.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"time"

	pushpull "github.com/p2pgossip/update"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const n = 5
	nodes := make([]*pushpull.Node, n)
	addrs := make([]string, n)

	for i := 0; i < n; i++ {
		node, err := pushpull.Open(
			pushpull.WithTCP("127.0.0.1:0"),
			pushpull.WithPullInterval(50*time.Millisecond),
			pushpull.WithSeed(int64(i)+1),
		)
		if err != nil {
			return err
		}
		nodes[i] = node
		addrs[i] = node.Addr()
	}
	for _, node := range nodes {
		node.AddPeers(addrs...)
	}
	fmt.Printf("five replicas on TCP: %v\n", addrs)

	if _, err := nodes[0].Publish(ctx, "config/rate", []byte("100")); err != nil {
		return err
	}
	if err := waitAll(nodes, "config/rate", "100"); err != nil {
		return err
	}
	fmt.Println("update 1 reached all replicas")

	// Crash node 4: snapshot, then close (drains the puller, frees the
	// socket).
	var snapshot bytes.Buffer
	if err := nodes[4].WriteSnapshot(&snapshot); err != nil {
		return err
	}
	if err := nodes[4].Close(ctx); err != nil {
		return err
	}
	fmt.Println("replica 4 crashed (state snapshotted)")

	// The survivors keep making progress.
	if _, err := nodes[1].Publish(ctx, "config/rate", []byte("250")); err != nil {
		return err
	}
	if _, err := nodes[2].Publish(ctx, "config/burst", []byte("16")); err != nil {
		return err
	}
	if err := waitAll(nodes[:4], "config/burst", "16"); err != nil {
		return err
	}
	fmt.Println("updates 2+3 reached the four survivors")

	// Restart node 4 on a fresh port, restored from its snapshot. It opens
	// peerless so the pre-crash state can be verified, then rejoins and
	// reconciles by pulling.
	restarted, err := pushpull.Open(
		pushpull.WithTCP("127.0.0.1:0"),
		pushpull.WithPullInterval(50*time.Millisecond),
		pushpull.WithSeed(99),
		pushpull.WithSnapshot(&snapshot),
	)
	if err != nil {
		return err
	}
	defer restarted.Close(ctx)
	if rev, ok := restarted.Get("config/rate"); !ok || string(rev.Value) != "100" {
		return fmt.Errorf("snapshot restore lost state")
	}
	fmt.Printf("replica 4 restarted on %s from its snapshot\n", restarted.Addr())
	restarted.AddPeers(addrs[:4]...)
	if err := restarted.Pull(ctx); err != nil {
		return err
	}

	if err := waitAll([]*pushpull.Node{restarted}, "config/rate", "250"); err != nil {
		return err
	}
	if err := waitAll([]*pushpull.Node{restarted}, "config/burst", "16"); err != nil {
		return err
	}
	fmt.Println("restarted replica pulled the updates it missed — cluster consistent")

	for _, node := range nodes[:4] {
		if err := node.Close(ctx); err != nil {
			return err
		}
	}
	return nil
}

func waitAll(nodes []*pushpull.Node, key, want string) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, node := range nodes {
			rev, ok := node.Get(key)
			if !ok || string(rev.Value) != want {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for %s=%s on %d replicas", key, want, len(nodes))
}
