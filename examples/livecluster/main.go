// Livecluster runs five replicas over real TCP sockets, publishes updates,
// "crashes" one replica (stopping it after saving a snapshot), keeps
// updating the survivors, and then restarts the crashed replica from its
// snapshot — it reconciles the missed updates by pulling, exactly the
// paper's offline-peer story but with durable local state.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	pushpull "github.com/p2pgossip/update"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 5
	replicas := make([]*pushpull.Replica, n)
	transports := make([]*pushpull.TCPTransport, n)
	addrs := make([]string, n)

	for i := 0; i < n; i++ {
		tr, err := pushpull.ListenTCP("127.0.0.1:0")
		if err != nil {
			return err
		}
		transports[i] = tr
		addrs[i] = tr.Addr()
		cfg := pushpull.DefaultReplicaConfig()
		cfg.PullInterval = 50 * time.Millisecond
		cfg.Seed = int64(i) + 1
		replicas[i], err = pushpull.NewReplica(cfg, tr)
		if err != nil {
			return err
		}
	}
	for _, r := range replicas {
		r.AddPeers(addrs...)
		r.Start()
	}
	fmt.Printf("five replicas on TCP: %v\n", addrs)

	replicas[0].Publish("config/rate", []byte("100"))
	if err := waitAll(replicas, "config/rate", "100"); err != nil {
		return err
	}
	fmt.Println("update 1 reached all replicas")

	// Crash replica 4: snapshot, stop, close its socket.
	var snapshot bytes.Buffer
	if err := replicas[4].WriteSnapshot(&snapshot); err != nil {
		return err
	}
	replicas[4].Stop()
	if err := transports[4].Close(); err != nil {
		return err
	}
	fmt.Println("replica 4 crashed (state snapshotted)")

	// The survivors keep making progress.
	replicas[1].Publish("config/rate", []byte("250"))
	replicas[2].Publish("config/burst", []byte("16"))
	if err := waitAll(replicas[:4], "config/burst", "16"); err != nil {
		return err
	}
	fmt.Println("updates 2+3 reached the four survivors")

	// Restart replica 4 on a fresh port, restore, rejoin, reconcile.
	tr, err := pushpull.ListenTCP("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer tr.Close()
	cfg := pushpull.DefaultReplicaConfig()
	cfg.PullInterval = 50 * time.Millisecond
	cfg.Seed = 99
	restarted, err := pushpull.NewReplica(cfg, tr)
	if err != nil {
		return err
	}
	if err := restarted.RestoreSnapshot(&snapshot); err != nil {
		return err
	}
	if rev, ok := restarted.Get("config/rate"); !ok || string(rev.Value) != "100" {
		return fmt.Errorf("snapshot restore lost state")
	}
	restarted.AddPeers(addrs[:4]...)
	restarted.Start()
	defer restarted.Stop()
	fmt.Printf("replica 4 restarted on %s from its snapshot\n", tr.Addr())

	if err := waitAll([]*pushpull.Replica{restarted}, "config/rate", "250"); err != nil {
		return err
	}
	if err := waitAll([]*pushpull.Replica{restarted}, "config/burst", "16"); err != nil {
		return err
	}
	fmt.Println("restarted replica pulled the updates it missed — cluster consistent")

	for _, r := range replicas[:4] {
		r.Stop()
	}
	for _, tr := range transports[:4] {
		_ = tr.Close()
	}
	return nil
}

func waitAll(replicas []*pushpull.Replica, key, want string) error {
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, r := range replicas {
			rev, ok := r.Get(key)
			if !ok || string(rev.Value) != want {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		time.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("timeout waiting for %s=%s on %d replicas", key, want, len(replicas))
}
