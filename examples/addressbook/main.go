// Addressbook simulates one of the paper's motivating applications (§1): a
// shared address book replicated across 150 peers that are online only ~30%
// of the time. Multiple writers add, change, and delete contacts; the
// hybrid push/pull protocol brings every replica to the same state despite
// the churn, with tombstones handling the deletes.
package main

import (
	"fmt"
	"log"

	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/simnet"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		replicas      = 150
		onlineAtStart = 45 // ~30%
	)
	cfg := gossip.DefaultConfig(replicas)
	cfg.Fr = 0.08
	cfg.NewPF = func() pf.Func { return pf.Geometric{Base: 0.9} }
	cfg.PullAttempts = 3
	cfg.PullTimeout = 20

	net, err := gossip.BuildNetwork(replicas, cfg, 0, 42)
	if err != nil {
		return err
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes:         net.Nodes,
		InitialOnline: onlineAtStart,
		Churn:         churn.Bernoulli{Sigma: 0.95, POn: 0.05},
		Seed:          42,
	})
	if err != nil {
		return err
	}
	en.Step()

	// Three writers edit the book over time; the engine keeps churning.
	type edit struct {
		round  int
		writer int
		verb   string
		key    string
		value  string
	}
	edits := []edit{
		{1, 0, "put", "alice", "alice@example.org"},
		{5, 1, "put", "bob", "bob@example.org"},
		{9, 2, "put", "carol", "carol@example.org"},
		{40, 1, "put", "alice", "alice@new-domain.org"}, // update
		{80, 0, "del", "bob", ""},                       // tombstone
	}
	next := 0
	for round := 1; round <= 600; round++ {
		for next < len(edits) && edits[next].round == round {
			e := edits[next]
			env := simnet.NewTestEnv(en, e.writer)
			en.Population().SetOnline(e.writer, true) // writers act while online
			if e.verb == "put" {
				net.Peers[e.writer].Publish(env, e.key, []byte(e.value))
				fmt.Printf("round %3d: peer %d put %s=%s\n", round, e.writer, e.key, e.value)
			} else {
				net.Peers[e.writer].PublishDelete(env, e.key)
				fmt.Printf("round %3d: peer %d deleted %s\n", round, e.writer, e.key)
			}
			next++
		}
		en.Step()
	}

	// Verify convergence.
	if !net.Converged() {
		return fmt.Errorf("replicas did not converge after 600 rounds")
	}
	sample := net.Peers[replicas-1].Store()
	fmt.Println("\nfinal state on an arbitrary replica:")
	for _, key := range sample.Keys() {
		rev, _ := sample.Get(key)
		fmt.Printf("  %-6s = %s\n", key, rev.Value)
	}
	if _, ok := sample.Get("bob"); ok {
		return fmt.Errorf("deleted contact resurfaced")
	}
	m := en.Metrics()
	fmt.Printf("\nall %d replicas converged; %0.f messages total (%.1f per replica), %0.f duplicates\n",
		replicas,
		m.Counter(simnet.MetricMessages),
		m.Counter(simnet.MetricMessages)/replicas,
		m.Counter(gossip.MetricDuplicates))
	return nil
}
