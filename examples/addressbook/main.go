// Addressbook runs one of the paper's motivating applications (§1) on the
// live runtime: a shared address book replicated across 150 peers that are
// online only ~30% of the time. Multiple writers add, change, and delete
// contacts while peers churn on- and offline; the hybrid push/pull protocol
// brings every replica to the same state, with tombstones handling the
// deletes. A single metrics registry shared by all nodes aggregates the
// message economy of the whole group.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	pushpull "github.com/p2pgossip/update"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	const (
		replicas      = 150
		onlineAtStart = 45 // ~30%
		churnTicks    = 12
	)
	hub := pushpull.NewHub()
	reg := pushpull.NewMetrics()
	nodes := make([]*pushpull.Node, replicas)
	addrs := make([]string, replicas)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("peer-%03d", i)
	}
	for i := range nodes {
		node, err := pushpull.Open(
			pushpull.WithHub(hub, addrs[i]),
			pushpull.WithPullInterval(25*time.Millisecond),
			pushpull.WithSeed(int64(i)+1),
			pushpull.WithMetrics(reg),
			pushpull.WithPeers(addrs...),
		)
		if err != nil {
			return err
		}
		nodes[i] = node
		defer node.Close(ctx)
	}

	// Start with ~30% of the population online.
	rng := rand.New(rand.NewSource(42))
	online := make([]bool, replicas)
	for _, i := range rng.Perm(replicas)[:onlineAtStart] {
		online[i] = true
	}
	for i, on := range online {
		hub.SetOnline(addrs[i], on)
	}
	fmt.Printf("%d of %d replicas start online\n", onlineAtStart, replicas)

	// Three writers edit the book over time while the population churns:
	// each tick, a few peers drop off and a few return (returning peers
	// pull, the paper's coming-online reconciliation).
	edits := []struct {
		tick   int
		writer int
		verb   string
		key    string
		value  string
	}{
		{0, 0, "put", "alice", "alice@example.org"},
		{2, 1, "put", "bob", "bob@example.org"},
		{4, 2, "put", "carol", "carol@example.org"},
		{7, 1, "put", "alice", "alice@new-domain.org"}, // update
		{10, 0, "del", "bob", ""},                      // tombstone
	}
	next := 0
	for tick := 0; tick < churnTicks; tick++ {
		for next < len(edits) && edits[next].tick == tick {
			e := edits[next]
			w := e.writer
			if !online[w] { // writers act while online
				online[w] = true
				hub.SetOnline(addrs[w], true)
				_ = nodes[w].Pull(ctx)
			}
			if e.verb == "put" {
				if _, err := nodes[w].Publish(ctx, e.key, []byte(e.value)); err != nil {
					return err
				}
				fmt.Printf("tick %2d: peer %d put %s=%s\n", tick, w, e.key, e.value)
			} else {
				if _, err := nodes[w].Delete(ctx, e.key); err != nil {
					return err
				}
				fmt.Printf("tick %2d: peer %d deleted %s\n", tick, w, e.key)
			}
			next++
		}
		// Bernoulli churn: 5% of the online drop off, 5% of the offline
		// return and reconcile.
		for i := range nodes {
			switch {
			case online[i] && rng.Float64() < 0.05:
				online[i] = false
				hub.SetOnline(addrs[i], false)
			case !online[i] && rng.Float64() < 0.05:
				online[i] = true
				hub.SetOnline(addrs[i], true)
				_ = nodes[i].Pull(ctx)
			}
		}
		time.Sleep(40 * time.Millisecond)
	}

	// Eventually every peer returns; pulls reconcile the whole group.
	for i := range nodes {
		if !online[i] {
			online[i] = true
			hub.SetOnline(addrs[i], true)
			_ = nodes[i].Pull(ctx)
		}
	}
	if err := waitConverged(nodes); err != nil {
		return err
	}

	sample := nodes[replicas-1]
	fmt.Println("\nfinal state on an arbitrary replica:")
	for _, key := range sample.Keys() {
		rev, _ := sample.Get(key)
		fmt.Printf("  %-6s = %s\n", key, rev.Value)
	}
	if _, ok := sample.Get("bob"); ok {
		return fmt.Errorf("deleted contact resurfaced")
	}
	msgs := reg.Counter(pushpull.MetricPushSent) + reg.Counter(pushpull.MetricPullRequests)
	fmt.Printf("\nall %d replicas converged; %.0f messages total (%.1f per replica), %.0f duplicate pushes\n",
		replicas, msgs, msgs/replicas, reg.Counter(pushpull.MetricPushDuplicate))
	return nil
}

// waitConverged blocks until every node agrees on the final address book:
// alice updated, carol present, bob tombstoned.
func waitConverged(nodes []*pushpull.Node) error {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, node := range nodes {
			alice, okA := node.Get("alice")
			_, okC := node.Get("carol")
			_, okB := node.Get("bob")
			if !okA || string(alice.Value) != "alice@new-domain.org" || !okC || okB {
				done = false
				break
			}
		}
		if done {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("replicas did not converge")
}
