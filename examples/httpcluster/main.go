// Httpcluster runs two real pushpulld processes on loopback and talks to
// them exactly the way an operator with curl would: PUT a key on the first
// daemon, watch the SSE stream and GET it on the second, query, and scrape
// /metrics and /v1/state. Every request is printed as the equivalent curl
// invocation, so the output doubles as a transcript of the HTTP API.
package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/p2pgossip/update/internal/cluster"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "httpcluster-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Println("building pushpulld…")
	bin, err := cluster.BuildDaemon(dir)
	if err != nil {
		return err
	}

	// Two daemons on ephemeral loopback ports, pulling aggressively so the
	// demo converges fast.
	base := cluster.ProcConfig{
		Seed:         1,
		PullInterval: 200 * time.Millisecond,
		PF:           1,
		SnapshotPath: filepath.Join(dir, "snap"),
	}
	c, err := cluster.Launch(bin, 2, base, os.Stderr)
	if err != nil {
		return err
	}
	defer c.Shutdown()
	a, b := c.Procs[0], c.Procs[1]
	fmt.Printf("daemon A: http://%s (gossip %s)\n", a.HTTPAddr, a.GossipAddr)
	fmt.Printf("daemon B: http://%s (gossip %s)\n\n", b.HTTPAddr, b.GossipAddr)

	// Open the SSE watch on B before writing to A, as a client tailing
	// changes would.
	watchURL := fmt.Sprintf("http://%s/v1/watch?prefix=demo/", b.HTTPAddr)
	fmt.Printf("$ curl -N %s &\n", watchURL)
	watchResp, err := http.Get(watchURL)
	if err != nil {
		return err
	}
	defer watchResp.Body.Close()
	watchLines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(watchResp.Body)
		for sc.Scan() {
			if line := sc.Text(); line != "" {
				watchLines <- line
			}
		}
		close(watchLines)
	}()

	// PUT on A.
	putURL := fmt.Sprintf("http://%s/v1/kv/demo/greeting", a.HTTPAddr)
	fmt.Printf("$ curl -X PUT -d 'hello from A' %s\n", putURL)
	if body, err := do(http.MethodPut, putURL, []byte("hello from A")); err != nil {
		return err
	} else {
		fmt.Printf("  %s\n", body)
	}

	// The watcher on B sees the update arrive over gossip.
	fmt.Println("watch stream on B:")
	deadline := time.After(10 * time.Second)
	for sawData := false; !sawData; {
		select {
		case line, ok := <-watchLines:
			if !ok {
				return fmt.Errorf("watch stream closed early")
			}
			fmt.Printf("  %s\n", line)
			sawData = strings.HasPrefix(line, "data:")
		case <-deadline:
			return fmt.Errorf("update never reached B's watch stream")
		}
	}

	// GET on B: the value replicated.
	getURL := fmt.Sprintf("http://%s/v1/kv/demo/greeting", b.HTTPAddr)
	fmt.Printf("$ curl %s\n", getURL)
	body, err := do(http.MethodGet, getURL, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  %s\n", body)

	// A §4.4 freshest-version query through B.
	queryURL := fmt.Sprintf("http://%s/v1/query", b.HTTPAddr)
	fmt.Printf("$ curl -X POST -d '{\"key\":\"demo/greeting\",\"k\":2}' %s\n", queryURL)
	if body, err = do(http.MethodPost, queryURL, []byte(`{"key":"demo/greeting","k":2}`)); err != nil {
		return err
	}
	fmt.Printf("  %s\n", body)

	// Scraped state: both members converged to the same digest.
	for name, p := range map[string]*cluster.Proc{"A": a, "B": b} {
		stateURL := fmt.Sprintf("http://%s/v1/state", p.HTTPAddr)
		fmt.Printf("$ curl %s\n", stateURL)
		if body, err = do(http.MethodGet, stateURL, nil); err != nil {
			return err
		}
		fmt.Printf("  %s: %s\n", name, body)
	}

	// A taste of /metrics.
	metricsURL := fmt.Sprintf("http://%s/metrics", a.HTTPAddr)
	fmt.Printf("$ curl %s | grep push\n", metricsURL)
	if body, err = do(http.MethodGet, metricsURL, nil); err != nil {
		return err
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.Contains(line, "push") && !strings.HasPrefix(line, "#") {
			fmt.Printf("  %s\n", line)
		}
	}
	return nil
}

// do issues one request and returns the trimmed body.
func do(method, url string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s %s: %d %s", method, url, resp.StatusCode, bytes.TrimSpace(out))
	}
	return bytes.TrimSpace(out), nil
}
