package main

import "testing"

// TestRun executes the example end to end; every println path doubles as an
// assertion because run returns an error on any unexpected state.
func TestRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example runs a full scenario")
	}
	if err := run(); err != nil {
		t.Fatalf("example failed: %v", err)
	}
}
