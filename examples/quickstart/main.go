// Quickstart: a 20-node group on the in-memory transport. One node
// publishes an update; the push phase floods it to the online population and
// an initially-offline node catches up by pulling when it "returns" — its
// Watch stream reports the pulled update as it lands.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	pushpull "github.com/p2pgossip/update"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	hub := pushpull.NewHub()

	const n = 20
	nodes := make([]*pushpull.Node, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("replica-%02d", i)
	}
	for i := 0; i < n; i++ {
		node, err := pushpull.Open(
			pushpull.WithHub(hub, addrs[i]),
			pushpull.WithPullInterval(50*time.Millisecond),
			pushpull.WithSeed(int64(i)+1),
			pushpull.WithPeers(addrs...),
		)
		if err != nil {
			return err
		}
		nodes[i] = node
		defer node.Close(ctx)
	}

	// Take the last node offline before the update happens, but leave a
	// watch on it: the stream will report the eventual pull-reconciled
	// update.
	hub.SetOnline(addrs[n-1], false)
	events, err := nodes[n-1].Watch(ctx, "")
	if err != nil {
		return err
	}
	fmt.Printf("%s is offline\n", addrs[n-1])

	update, err := nodes[0].Publish(ctx, "motd", []byte("gossip works"))
	if err != nil {
		return err
	}
	fmt.Printf("%s published %s\n", addrs[0], update.ID())

	if err := waitFor(2*time.Second, func() bool {
		for _, node := range nodes[:n-1] {
			if _, ok := node.Get("motd"); !ok {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("online replicas: %w", err)
	}
	fmt.Println("all 19 online replicas received the update via push")

	if _, ok := nodes[n-1].Get("motd"); ok {
		return fmt.Errorf("offline replica should not have the update yet")
	}

	// The offline node returns and reconciles via the pull phase.
	hub.SetOnline(addrs[n-1], true)
	if err := nodes[n-1].Pull(ctx); err != nil {
		return err
	}
	select {
	case ev := <-events:
		fmt.Printf("%s came online and observed %s of %s=%q via %s\n",
			addrs[n-1], ev.Kind, ev.Update.Key, ev.Update.Value, ev.Source)
		if ev.Source != pushpull.SourcePull {
			return fmt.Errorf("expected a pull-sourced event, got %s", ev.Source)
		}
	case <-time.After(2 * time.Second):
		return fmt.Errorf("returning replica saw no event")
	}
	rev, ok := nodes[n-1].Get("motd")
	if !ok {
		return fmt.Errorf("returning replica still misses the update")
	}
	fmt.Printf("%s now reads motd=%q (version %s)\n", addrs[n-1], rev.Value, rev.Version)
	return nil
}

func waitFor(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("condition not met within %v", d)
}
