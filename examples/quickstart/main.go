// Quickstart: a 20-replica group on the in-memory transport. One replica
// publishes an update; the push phase floods it to the online population and
// an initially-offline replica catches up by pulling when it "returns".
package main

import (
	"fmt"
	"log"
	"time"

	pushpull "github.com/p2pgossip/update"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	hub := pushpull.NewHub()

	const n = 20
	replicas := make([]*pushpull.Replica, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		addrs[i] = fmt.Sprintf("replica-%02d", i)
		tr, err := hub.Attach(addrs[i])
		if err != nil {
			return err
		}
		cfg := pushpull.DefaultReplicaConfig()
		cfg.PullInterval = 50 * time.Millisecond
		cfg.Seed = int64(i) + 1
		replicas[i], err = pushpull.NewReplica(cfg, tr)
		if err != nil {
			return err
		}
	}
	for _, r := range replicas {
		r.AddPeers(addrs...)
		r.Start()
		defer r.Stop()
	}

	// Take the last replica offline before the update happens.
	hub.SetOnline(addrs[n-1], false)
	fmt.Printf("%s is offline\n", addrs[n-1])

	update := replicas[0].Publish("motd", []byte("gossip works"))
	fmt.Printf("%s published %s\n", addrs[0], update.ID())

	if err := waitFor(2*time.Second, func() bool {
		for _, r := range replicas[:n-1] {
			if _, ok := r.Get("motd"); !ok {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("online replicas: %w", err)
	}
	fmt.Println("all 19 online replicas received the update via push")

	if _, ok := replicas[n-1].Get("motd"); ok {
		return fmt.Errorf("offline replica should not have the update yet")
	}

	// The offline replica returns and reconciles via the pull phase.
	hub.SetOnline(addrs[n-1], true)
	replicas[n-1].PullNow()
	if err := waitFor(2*time.Second, func() bool {
		_, ok := replicas[n-1].Get("motd")
		return ok
	}); err != nil {
		return fmt.Errorf("returning replica: %w", err)
	}
	rev, _ := replicas[n-1].Get("motd")
	fmt.Printf("%s came online and pulled: motd=%q (version %s)\n",
		addrs[n-1], rev.Value, rev.Version)
	return nil
}

func waitFor(d time.Duration, cond func() bool) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(time.Millisecond)
	}
	return fmt.Errorf("condition not met within %v", d)
}
