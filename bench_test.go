// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus ablations of the design choices called out in DESIGN.md and
// micro-benchmarks of the hot paths.
//
// Figure/table benches report the headline quantity of the corresponding
// plot via b.ReportMetric (msgs/peer, final F_aware), so `go test -bench=.`
// reproduces the paper's numbers alongside the timing.
package pushpull_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/analytic"
	"github.com/p2pgossip/update/internal/churn"
	"github.com/p2pgossip/update/internal/experiments"
	"github.com/p2pgossip/update/internal/gossip"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/pgrid"
	"github.com/p2pgossip/update/internal/replicalist"
	"github.com/p2pgossip/update/internal/simnet"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/version"
	"github.com/p2pgossip/update/internal/wire"
)

// --- Figures (analytic model, exactly the paper's parameters) ---

func BenchmarkFig1InitialOnlinePopulation(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig1b()
	}
	last := fig.Curves[len(fig.Curves)-1]
	b.ReportMetric(last.Points[len(last.Points)-1].Y, "msgs/peer")
}

func BenchmarkFig2Fanout(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig2()
	}
	last := fig.Curves[len(fig.Curves)-1] // f_r = 0.05
	b.ReportMetric(last.Points[len(last.Points)-1].Y, "msgs/peer(f_r=0.05)")
}

func BenchmarkFig3Sigma(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig3()
	}
	first := fig.Curves[0] // sigma = 1
	b.ReportMetric(first.Points[len(first.Points)-1].Y, "msgs/peer(sigma=1)")
}

func BenchmarkFig4ForwardingProbability(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig4()
	}
	for _, c := range fig.Curves {
		if c.Label == (pf.Geometric{Base: 0.9}).String() {
			b.ReportMetric(c.Points[len(c.Points)-1].Y, "msgs/peer(0.9^t)")
		}
	}
}

func BenchmarkFig5Scalability(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig5()
	}
	last := fig.Curves[len(fig.Curves)-1] // 10^8 replicas
	b.ReportMetric(last.Points[len(last.Points)-1].Y, "msgs/peer(R=1e8)")
}

func BenchmarkFigPull(b *testing.B) {
	var fig experiments.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.FigPull()
	}
	c := fig.Curves[0]
	b.ReportMetric(c.Points[len(c.Points)-1].Y, "P(success,40attempts)")
}

// --- Table 2 (analytic + simulated) ---

func BenchmarkTable2Analytic(b *testing.B) {
	var blocks []experiments.Table2Block
	var err error
	for i := 0; i < b.N; i++ {
		blocks, err = experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, block := range blocks {
		for _, row := range block.Rows {
			if row.Scheme == analytic.SchemeOurs.String() {
				b.ReportMetric(row.Ours, "ours-msgs/peer")
			}
		}
	}
}

func BenchmarkTable2Simulated(b *testing.B) {
	// Simulated counterpart at R = 1000 (the paper's top-block scale).
	var msgs float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.SimulatePush(experiments.SimParams{
			R: 1000, ROn0: 1000, Sigma: 1, Fr: 0.004,
			PartialList: true,
			NewPF:       func() pf.Func { return pf.Geometric{Base: 0.9} },
			Seed:        int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		msgs = res.MessagesPerOnlinePeer
	}
	b.ReportMetric(msgs, "ours-msgs/peer")
}

// --- Simulated push at the paper's headline scale ---

func BenchmarkSimulatedPush10k(b *testing.B) {
	var res experiments.SimResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.SimulatePush(experiments.SimParams{
			R: 10_000, ROn0: 1000, Sigma: 0.95, Fr: 0.01,
			PartialList: true, ViewSize: 500, Seed: int64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.MessagesPerOnlinePeer, "msgs/peer")
	b.ReportMetric(res.FinalAware, "F_aware")
}

// --- Ablations (§6 optimisations, isolated) ---

// ablationRun floods one update through 500 peers and returns total
// messages.
func ablationRun(b *testing.B, mutate func(*gossip.Config), seed int64) float64 {
	b.Helper()
	const n = 500
	cfg := gossip.DefaultConfig(n)
	cfg.Fr = 0.02
	cfg.NewPF = nil
	cfg.PullAttempts = 0
	cfg.PullTimeout = 0
	mutate(&cfg)
	net, err := gossip.BuildNetwork(n, cfg, 0, seed)
	if err != nil {
		b.Fatal(err)
	}
	en, err := simnet.NewEngine(simnet.Config{
		Nodes: net.Nodes, InitialOnline: n / 2,
		Churn: churn.Bernoulli{Sigma: 0.98}, Seed: seed,
	})
	if err != nil {
		b.Fatal(err)
	}
	en.Step()
	net.Peers[0].Publish(simnet.NewTestEnv(en, 0), "k", []byte("v"))
	en.Run(40)
	return en.Metrics().Counter(simnet.MetricMessages)
}

func BenchmarkAblationPartialList(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		seed := int64(i) + 1
		with = ablationRun(b, func(c *gossip.Config) { c.PartialList = true }, seed)
		without = ablationRun(b, func(c *gossip.Config) { c.PartialList = false }, seed)
	}
	b.ReportMetric(with, "msgs(with-list)")
	b.ReportMetric(without, "msgs(no-list)")
}

func BenchmarkAblationDecayingPF(b *testing.B) {
	var static, decaying float64
	for i := 0; i < b.N; i++ {
		seed := int64(i) + 1
		static = ablationRun(b, func(c *gossip.Config) {}, seed)
		decaying = ablationRun(b, func(c *gossip.Config) {
			c.NewPF = func() pf.Func { return pf.Geometric{Base: 0.9} }
		}, seed)
	}
	b.ReportMetric(static, "msgs(PF=1)")
	b.ReportMetric(decaying, "msgs(PF=0.9^t)")
}

func BenchmarkAblationAdaptivePF(b *testing.B) {
	var adaptive float64
	for i := 0; i < b.N; i++ {
		adaptive = ablationRun(b, func(c *gossip.Config) {
			c.NewPF = func() pf.Func { return pf.NewAdaptive(1.0) }
		}, int64(i)+1)
	}
	b.ReportMetric(adaptive, "msgs(adaptive)")
}

func BenchmarkAblationAckPolicy(b *testing.B) {
	var acked float64
	for i := 0; i < b.N; i++ {
		acked = ablationRun(b, func(c *gossip.Config) { c.Ack = gossip.AckFirst }, int64(i)+1)
	}
	b.ReportMetric(acked, "msgs(ack-first)")
}

func BenchmarkAblationListThreshold(b *testing.B) {
	var capped float64
	for i := 0; i < b.N; i++ {
		capped = ablationRun(b, func(c *gossip.Config) {
			c.PartialList = true
			c.ListThreshold = 0.05
			c.TruncatePolicy = replicalist.DropRandom
		}, int64(i)+1)
	}
	b.ReportMetric(capped, "msgs(L_thr=0.05)")
}

// --- Pull phase ---

func BenchmarkPullAnalysis(b *testing.B) {
	var attempts int
	for i := 0; i < b.N; i++ {
		attempts = analytic.PullAttemptsFor(100, 1, 1000, 0.999)
	}
	b.ReportMetric(float64(attempts), "attempts(99.9%)")
}

// --- Micro-benchmarks of hot paths ---

func BenchmarkStoreApply(b *testing.B) {
	st := store.New()
	w, err := store.NewWriter("o", st, time.Now, rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	updates := make([]store.Update, 1000)
	for i := range updates {
		updates[i] = w.Put(fmt.Sprintf("k%d", i%50), []byte("value"))
	}
	dst := store.New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.Apply(updates[i%len(updates)])
	}
}

func BenchmarkStoreMissingFor(b *testing.B) {
	st := store.New()
	w, err := store.NewWriter("o", st, time.Now, rand.New(rand.NewSource(2)))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		w.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	half := version.NewClock()
	half["o"] = 250
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := st.MissingFor(half); len(got) != 250 {
			b.Fatalf("missing = %d", len(got))
		}
	}
}

func BenchmarkVectorClockMerge(b *testing.B) {
	a := version.NewClock()
	c := version.NewClock()
	for i := 0; i < 32; i++ {
		a[fmt.Sprintf("p%d", i)] = uint64(i)
		c[fmt.Sprintf("p%d", i+16)] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Merge(c)
	}
}

func BenchmarkReplicaListUnion(b *testing.B) {
	xs := make([]int, 200)
	ys := make([]int, 200)
	for i := range xs {
		xs[i] = i
		ys[i] = i + 100
	}
	la, lb := replicalist.FromSlice(xs), replicalist.FromSlice(ys)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = la.Union(lb)
	}
}

func BenchmarkPGridRoute(b *testing.B) {
	g, err := pgrid.Build(1024, 8, 3, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Route(i%1024, fmt.Sprintf("key-%d", i), nil, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeDecode(b *testing.B) {
	st := store.New()
	w, err := store.NewWriter("o", st, time.Now, rand.New(rand.NewSource(4)))
	if err != nil {
		b.Fatal(err)
	}
	u := w.Put("key", make([]byte, 256))
	env := wire.Envelope{
		Kind: wire.KindPush, From: "a:1", Update: wire.FromStore(u),
		RF: []string{"a:1", "b:2", "c:3", "d:4"}, T: 3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw, err := wire.Encode(env)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.Decode(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnalyticPushRecursion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := analytic.Push(analytic.PushParams{
			R: 10_000, ROn0: 1000, Sigma: 0.95, Fr: 0.01, PartialList: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}
