package main

import (
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Figure 2") || !strings.Contains(got, "F_r = 0.05") {
		t.Fatalf("figure 2 output malformed:\n%s", got)
	}
}

func TestRunAllFigures(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "all"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"Figure 1a", "Figure 1b", "Figure 2",
		"Figure 3", "Figure 4", "Figure 5", "Figure pull"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in -fig all output", want)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "3", "-csv"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "curve,F_aware,") {
		t.Fatalf("CSV header missing:\n%s", out.String())
	}
}

func TestRunTable(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-table"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{"Gnutella", "Using Partial List",
		"Haas et al. G(0.8,2)", "Our Scheme", "paper msgs/peer"} {
		if !strings.Contains(got, want) {
			t.Fatalf("table output missing %q:\n%s", want, got)
		}
	}
}

func TestRunTableSimulated(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated table is slow")
	}
	var out strings.Builder
	if err := run([]string{"-table", "-sim", "-seed", "3"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "simulated cross-check") {
		t.Fatalf("simulated table missing:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no arguments should error")
	}
	if err := run([]string{"-fig", "99"}, &out); err == nil {
		t.Fatal("unknown figure should error")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag should error")
	}
}

func TestRunStudies(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-study", "lthr"}, &out); err != nil {
		t.Fatalf("lthr study: %v", err)
	}
	if !strings.Contains(out.String(), "threshold trade-off") {
		t.Fatalf("lthr output malformed:\n%s", out.String())
	}
	if err := run([]string{"-study", "nope"}, &out); err == nil {
		t.Fatal("unknown study accepted")
	}
}

func TestRunStudyBackbone(t *testing.T) {
	if testing.Short() {
		t.Skip("backbone study is slow")
	}
	var out strings.Builder
	if err := run([]string{"-study", "backbone", "-seed", "2"}, &out); err != nil {
		t.Fatalf("backbone study: %v", err)
	}
	if !strings.Contains(out.String(), "backbone") {
		t.Fatalf("backbone output malformed:\n%s", out.String())
	}
}

func TestRunFigureWithSimOverlay(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "3", "-sim", "-seed", "1"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Simulated counterpart of figure 3") {
		t.Fatalf("overlay missing:\n%s", out.String())
	}
	// Figures without an overlay say so instead of failing.
	out.Reset()
	if err := run([]string{"-fig", "5", "-sim"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "no simulated overlay") {
		t.Fatalf("placeholder missing:\n%s", out.String())
	}
}
