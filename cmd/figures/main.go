// Command figures regenerates the paper's evaluation artefacts: Figures
// 1(a), 1(b), 2, 3, 4, 5, the pull-phase analysis, and Table 2.
//
// Usage:
//
//	figures -fig all            # every figure as text tables
//	figures -fig 2              # one figure
//	figures -fig 2 -csv         # CSV output
//	figures -table              # Table 2, paper vs ours
//	figures -table -sim         # add a simulated Table 2 column check
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/p2pgossip/update/internal/experiments"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/pf"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fig := fs.String("fig", "", "figure id: 1a, 1b, 2, 3, 4, 5, pull, or all")
	table := fs.Bool("table", false, "print Table 2 (paper vs ours)")
	study := fs.String("study", "", "extra study: bimodal, backbone, or lthr")
	sim := fs.Bool("sim", false, "add simulated cross-checks (with -table or -fig)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned tables")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fig == "" && !*table && *study == "" {
		fs.Usage()
		return fmt.Errorf("nothing to do: pass -fig, -table, or -study")
	}

	if *fig != "" {
		figures := []experiments.Figure{}
		if *fig == "all" {
			figures = experiments.AllFigures()
		} else {
			f, err := experiments.FigureByID(*fig)
			if err != nil {
				return err
			}
			figures = append(figures, f)
		}
		for _, f := range figures {
			if *csv {
				printFigureCSV(out, f)
			} else {
				fmt.Fprintln(out, f.Render())
			}
			if *sim {
				if err := printSimOverlay(out, f.ID, *seed); err != nil {
					return err
				}
			}
		}
	}

	if *study != "" {
		if err := runStudy(out, *study, *seed); err != nil {
			return err
		}
	}

	if *table {
		blocks, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiments.RenderTable2(blocks))
		if *sim {
			if err := printSimulatedTable2(out, *seed); err != nil {
				return err
			}
		}
	}
	return nil
}

func printFigureCSV(out io.Writer, f experiments.Figure) {
	tb := &metrics.Table{Header: []string{"curve", f.XLabel, f.YLabel}}
	for _, c := range f.Curves {
		for _, p := range c.Points {
			tb.AddRow(c.Label, p.X, p.Y)
		}
	}
	fmt.Fprintf(out, "# Figure %s: %s\n%s", f.ID, f.Title, tb.CSV())
}

// printSimulatedTable2 re-runs the Table 2 top-block scenario on the
// stochastic simulator for every scheme.
func printSimulatedTable2(out io.Writer, seed int64) error {
	type scheme struct {
		name    string
		newPF   func() pf.Func
		partial bool
	}
	schemes := []scheme{
		{"Gnutella", func() pf.Func { return pf.TTL{Rounds: 12} }, false},
		{"Using Partial List", func() pf.Func { return pf.TTL{Rounds: 12} }, true},
		{"Haas et al. G(0.8,2)", func() pf.Func { return pf.Haas{P1: 0.8, K: 2} }, false},
		{"Our Scheme", func() pf.Func { return pf.Geometric{Base: 0.9} }, true},
	}
	tb := &metrics.Table{Header: []string{"Scheme", "sim msgs/peer", "sim F_aware", "rounds"}}
	for _, s := range schemes {
		res, err := experiments.SimulatePush(experiments.SimParams{
			R: 1000, ROn0: 1000, Sigma: 1, Fr: 0.004,
			NewPF: s.newPF, PartialList: s.partial, Seed: seed,
		})
		if err != nil {
			return err
		}
		tb.AddRow(s.name, res.MessagesPerOnlinePeer, res.FinalAware, res.Rounds)
	}
	fmt.Fprintf(out, "Table 2 — simulated cross-check (R_on/R = 10^3/10^3, seed %d)\n%s", seed, tb.String())
	return nil
}

// runStudy executes one of the §8 future-work studies or the §4.2 L_thr
// sweep.
func runStudy(out io.Writer, name string, seed int64) error {
	switch name {
	case "bimodal":
		res, err := experiments.BimodalStudy(experiments.BimodalParams{
			R: 2000, ROn0: 200, Sigma: 1, Fr: 0.007,
			Trials: 60, ViewSize: 300, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Bimodality study (critical regime: R=2000, R_on=200, f_r=0.007)\n%s",
			experiments.RenderBimodal(res))
		return nil
	case "backbone":
		rows, err := experiments.BackboneStudy(experiments.BackboneParams{
			R: 200, MeanOnline: 0.3, BackboneFrac: 0.1, Trials: 3, Seed: seed,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Non-uniform availability study (mean online 30%%)\n%s",
			experiments.RenderBackbone(rows))
		return nil
	case "lthr":
		rows, err := experiments.LThrSweep(experiments.LThrParams{
			R: 10_000, ROn0: 1000, Sigma: 0.95, Fr: 0.01, UpdateBytes: 100,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Partial-list threshold trade-off (R=10000, R_on=1000, sigma=0.95, f_r=0.01)\n%s",
			experiments.RenderLThr(rows))
		return nil
	default:
		return fmt.Errorf("unknown study %q (want bimodal, backbone, or lthr)", name)
	}
}

// printSimOverlay runs a reduced-scale (R = 2000) simulated counterpart of
// one analytic figure so the stochastic protocol can be eyeballed against
// the model.
func printSimOverlay(out io.Writer, figID string, seed int64) error {
	type variant struct {
		label string
		p     experiments.SimParams
	}
	base := experiments.SimParams{R: 2000, ROn0: 200, Sigma: 0.95, Fr: 0.05, Seed: seed}
	var variants []variant
	switch figID {
	case "1a":
		v := base
		v.ROn0 = 20
		variants = append(variants, variant{"R_on[0]/R = 20/2000", v})
	case "1b":
		for _, on := range []int{100, 200, 600} {
			v := base
			v.ROn0 = on
			variants = append(variants, variant{fmt.Sprintf("R_on[0] = %d", on), v})
		}
	case "2":
		for _, fr := range []float64{0.025, 0.05, 0.1} {
			v := base
			v.Sigma = 0.9
			v.Fr = fr
			variants = append(variants, variant{fmt.Sprintf("f_r = %g", fr), v})
		}
	case "3":
		for _, sigma := range []float64{1, 0.8, 0.5} {
			v := base
			v.Sigma = sigma
			variants = append(variants, variant{fmt.Sprintf("sigma = %g", sigma), v})
		}
	case "4":
		for _, b := range []float64{0.9, 0.7, 0.5} {
			b := b
			v := base
			v.Sigma = 0.9
			v.NewPF = func() pf.Func { return pf.Geometric{Base: b} }
			variants = append(variants, variant{fmt.Sprintf("PF(t) = %g^t", b), v})
		}
	default:
		fmt.Fprintf(out, "(no simulated overlay for figure %s)\n\n", figID)
		return nil
	}
	tb := &metrics.Table{Header: []string{"curve", "final F_aware", "msgs/online peer", "rounds"}}
	for _, v := range variants {
		res, err := experiments.SimulatePush(v.p)
		if err != nil {
			return err
		}
		tb.AddRow(v.label, res.FinalAware, res.MessagesPerOnlinePeer, res.Rounds)
	}
	fmt.Fprintf(out, "Simulated counterpart of figure %s (R = 2000, seed %d)\n%s\n", figID, seed, tb.String())
	return nil
}
