package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCompareBaseline exercises only the baseline-loading path — no
// benchmarks are executed for broken baselines, so these are fast.
func runCompareBaseline(t *testing.T, path string) (int, string) {
	t.Helper()
	var stderr bytes.Buffer
	code := runCompare([]string{"-baseline", path}, new(bytes.Buffer), &stderr)
	return code, stderr.String()
}

func TestCompareBaselineMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	code, msg := runCompareBaseline(t, path)
	if code != exitBaselineBroken {
		t.Fatalf("exit code %d, want %d", code, exitBaselineBroken)
	}
	if !strings.Contains(msg, path) || !strings.Contains(msg, "not found") {
		t.Fatalf("message does not name the missing file: %q", msg)
	}
	if !strings.Contains(msg, "regenerate") {
		t.Fatalf("message does not say how to recover: %q", msg)
	}
}

func TestCompareBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, msg := runCompareBaseline(t, path)
	if code != exitBaselineBroken {
		t.Fatalf("exit code %d, want %d", code, exitBaselineBroken)
	}
	if !strings.Contains(msg, "malformed JSON") {
		t.Fatalf("message does not classify the failure: %q", msg)
	}
}

func TestCompareBaselineEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, msg := runCompareBaseline(t, path)
	if code != exitBaselineBroken {
		t.Fatalf("exit code %d, want %d", code, exitBaselineBroken)
	}
	if !strings.Contains(msg, "no benchmark results") {
		t.Fatalf("message does not classify the failure: %q", msg)
	}
}

func TestCompareUsageErrorsKeepExitTwo(t *testing.T) {
	var stderr bytes.Buffer
	if code := runCompare(nil, new(bytes.Buffer), &stderr); code != exitUsage {
		t.Fatalf("missing -baseline: exit code %d, want %d", code, exitUsage)
	}
	if code := runCompare([]string{"-baseline", "x", "-threshold", "-1"},
		new(bytes.Buffer), &stderr); code != exitUsage {
		t.Fatalf("negative threshold: exit code %d, want %d", code, exitUsage)
	}
}
