package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runCompareBaseline exercises only the baseline-loading path — no
// benchmarks are executed for broken baselines, so these are fast.
func runCompareBaseline(t *testing.T, path string) (int, string) {
	t.Helper()
	var stderr bytes.Buffer
	code := runCompare([]string{"-baseline", path}, new(bytes.Buffer), &stderr)
	return code, stderr.String()
}

func TestCompareBaselineMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nope.json")
	code, msg := runCompareBaseline(t, path)
	if code != exitBaselineBroken {
		t.Fatalf("exit code %d, want %d", code, exitBaselineBroken)
	}
	if !strings.Contains(msg, path) || !strings.Contains(msg, "not found") {
		t.Fatalf("message does not name the missing file: %q", msg)
	}
	if !strings.Contains(msg, "regenerate") {
		t.Fatalf("message does not say how to recover: %q", msg)
	}
}

func TestCompareBaselineMalformed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	code, msg := runCompareBaseline(t, path)
	if code != exitBaselineBroken {
		t.Fatalf("exit code %d, want %d", code, exitBaselineBroken)
	}
	if !strings.Contains(msg, "malformed JSON") {
		t.Fatalf("message does not classify the failure: %q", msg)
	}
}

func TestCompareBaselineEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"schema":1,"results":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	code, msg := runCompareBaseline(t, path)
	if code != exitBaselineBroken {
		t.Fatalf("exit code %d, want %d", code, exitBaselineBroken)
	}
	if !strings.Contains(msg, "no benchmark results") {
		t.Fatalf("message does not classify the failure: %q", msg)
	}
}

func TestCompareCustomUnits(t *testing.T) {
	base := []Result{{
		Package: "./p", Name: "BenchmarkCatchUp", NsPerOp: 100,
		BytesPerOp: -1, AllocsPerOp: -1,
		Extra: map[string]float64{"updates/s": 1000, "bytes/op": 50},
	}}
	fresh := func(upd, bytes float64) []Result {
		return []Result{{
			Package: "./p", Name: "BenchmarkCatchUp", NsPerOp: 100,
			BytesPerOp: -1, AllocsPerOp: -1,
			Extra: map[string]float64{"updates/s": upd, "bytes/op": bytes},
		}}
	}
	if regs, missing := compareResults(base, fresh(950, 55), 0.25); len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("within threshold flagged: %v %v", regs, missing)
	}
	// Throughput units regress downward.
	regs, _ := compareResults(base, fresh(700, 50), 0.25)
	if len(regs) != 1 || regs[0].Metric != "updates/s" {
		t.Fatalf("throughput drop not flagged: %v", regs)
	}
	// Cost units regress upward.
	regs, _ = compareResults(base, fresh(1000, 80), 0.25)
	if len(regs) != 1 || regs[0].Metric != "bytes/op" {
		t.Fatalf("cost rise not flagged: %v", regs)
	}
	// A unit the fresh run stopped reporting is not a regression.
	if regs, _ = compareResults(base, []Result{{
		Package: "./p", Name: "BenchmarkCatchUp", NsPerOp: 100,
		BytesPerOp: -1, AllocsPerOp: -1,
	}}, 0.25); len(regs) != 0 {
		t.Fatalf("missing unit flagged: %v", regs)
	}
}

func TestCompareIOBoundSkipsTimeButGatesAllocs(t *testing.T) {
	base := []Result{{
		Package: "./internal/wal", Name: "BenchmarkWALAppend/always",
		NsPerOp: 200000, BytesPerOp: 0, AllocsPerOp: 0, IOBound: true,
		Extra: map[string]float64{"flush-ms/op": 0.2},
	}}
	// A 3x wall-time swing on an fsync-bound benchmark is disk weather,
	// not a regression — and its time-derived extras are skipped with it.
	regs, missing := compareResults(base, []Result{{
		Package: "./internal/wal", Name: "BenchmarkWALAppend/always",
		NsPerOp: 600000, BytesPerOp: 0, AllocsPerOp: 0,
		Extra: map[string]float64{"flush-ms/op": 0.6},
	}}, 0.25)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("io-bound wall-time swing flagged: %v %v", regs, missing)
	}
	// Allocations are deterministic regardless of disk speed and still gate.
	regs, _ = compareResults(base, []Result{{
		Package: "./internal/wal", Name: "BenchmarkWALAppend/always",
		NsPerOp: 600000, BytesPerOp: 0, AllocsPerOp: 3,
	}}, 0.25)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("io-bound alloc regression not flagged: %v", regs)
	}
	// Disappearing entirely is still caught.
	if _, missing := compareResults(base, nil, 0.25); len(missing) != 1 {
		t.Fatalf("missing io-bound benchmark not flagged: %v", missing)
	}
}

func TestIOBoundClassification(t *testing.T) {
	if !ioBound("./internal/wal", "BenchmarkWALAppend/always") ||
		!ioBound("./internal/wal", "BenchmarkWALAppendParallel") {
		t.Fatal("fsync-bound benchmarks not classified io-bound")
	}
	if ioBound("./internal/wal", "BenchmarkWALAppend/never") ||
		ioBound("./internal/wal", "BenchmarkRecovery/records=1000") ||
		ioBound("./internal/live", "BenchmarkWALAppend/always") {
		t.Fatal("cpu-bound benchmarks misclassified io-bound")
	}
}

func TestParseBenchOutputCustomUnits(t *testing.T) {
	out := "BenchmarkCatchUp/snapshot-8  12  95000 ns/op  12345 updates/s  80 B/op  9 allocs/op\n"
	results := parseBenchOutput("./p", out)
	if len(results) != 1 {
		t.Fatalf("parsed %d results", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkCatchUp/snapshot" || r.NsPerOp != 95000 ||
		r.BytesPerOp != 80 || r.AllocsPerOp != 9 {
		t.Fatalf("standard columns wrong: %+v", r)
	}
	if r.Extra["updates/s"] != 12345 {
		t.Fatalf("custom unit not captured: %+v", r.Extra)
	}
}

func TestCompareUsageErrorsKeepExitTwo(t *testing.T) {
	var stderr bytes.Buffer
	if code := runCompare(nil, new(bytes.Buffer), &stderr); code != exitUsage {
		t.Fatalf("missing -baseline: exit code %d, want %d", code, exitUsage)
	}
	if code := runCompare([]string{"-baseline", "x", "-threshold", "-1"},
		new(bytes.Buffer), &stderr); code != exitUsage {
		t.Fatalf("negative threshold: exit code %d, want %d", code, exitUsage)
	}
}
