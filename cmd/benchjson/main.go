// Command benchjson runs the protocol hot-path benchmarks and emits a
// machine-readable perf-trajectory file (BENCH_<pr>.json, committed per
// perf PR), so regressions are visible as diffs rather than folklore.
//
//	go run ./cmd/benchjson -out BENCH_3.json
//	make bench
//
// The compare subcommand reruns the benchmarks recorded in a committed
// trajectory file and fails when ns/op or allocs/op regress beyond a
// threshold (default 25%) on any of them — the CI perf gate:
//
//	go run ./cmd/benchjson compare -baseline BENCH_3.json
//	make bench-compare
//
// The tool shells out to `go test -bench` per package and parses the
// standard benchmark output, including -benchmem columns.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Package    string  `json:"package"`
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are -1 when the benchmark did not report
	// allocations.
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	// Extra holds custom b.ReportMetric columns by unit (e.g. "updates/s").
	// Units ending in "/s" are throughputs — higher is better — and the
	// compare gate checks them in that direction.
	Extra map[string]float64 `json:"extra,omitempty"`
	// IOBound marks benchmarks whose timed loop is dominated by fsync:
	// their wall time measures the machine's disk-flush latency (bimodal
	// across runs on shared storage), not the code under test, so the
	// compare gate skips their time-derived metrics. Allocations still
	// gate — they are deterministic regardless of disk speed.
	IOBound bool `json:"io_bound,omitempty"`
}

// ioBound reports whether a benchmark belongs in the fsync-dominated set
// recorded as IOBound in the trajectory file.
func ioBound(pkg, name string) bool {
	return pkg == "./internal/wal" &&
		(strings.HasPrefix(name, "BenchmarkWALAppend/always") ||
			strings.HasPrefix(name, "BenchmarkWALAppendParallel"))
}

// File is the schema of the emitted trajectory file.
type File struct {
	Schema    int      `json:"schema"`
	Generated string   `json:"generated"`
	GoVersion string   `json:"go"`
	GoOS      string   `json:"goos"`
	GoArch    string   `json:"goarch"`
	BenchTime string   `json:"benchtime"`
	Results   []Result `json:"results"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	out := flag.String("out", "", "output file (default stdout)")
	benchtime := flag.String("benchtime", "300ms", "go test -benchtime value")
	pattern := flag.String("bench", ".", "go test -bench pattern")
	pkgs := flag.String("packages",
		"./internal/engine,./internal/store,./internal/wire,./internal/live,./internal/wal",
		"comma-separated packages to benchmark")
	flag.Parse()

	file := File{
		Schema:    1,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GoOS:      runtime.GOOS,
		GoArch:    runtime.GOARCH,
		BenchTime: *benchtime,
	}
	for _, pkg := range strings.Split(*pkgs, ",") {
		pkg = strings.TrimSpace(pkg)
		if pkg == "" {
			continue
		}
		results, err := runPackage(pkg, *pattern, *benchtime)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", pkg, err)
			os.Exit(1)
		}
		file.Results = append(file.Results, results...)
	}

	raw, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	raw = append(raw, '\n')
	if *out == "" {
		os.Stdout.Write(raw)
		return
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(file.Results))
}

func runPackage(pkg, pattern, benchtime string) ([]Result, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", pattern, "-benchmem", "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test: %w", err)
	}
	return parseBenchOutput(pkg, string(outBytes)), nil
}

// parseBenchOutput extracts benchmark lines from `go test -bench` output.
// Lines look like:
//
//	BenchmarkName/case-8  12345  411.4 ns/op  80 B/op  1 allocs/op
//
// Custom unit columns (b.ReportMetric) are collected under Extra.
func parseBenchOutput(pkg, out string) []Result {
	var results []Result
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{
			Package:     pkg,
			Name:        trimProcSuffix(fields[0]),
			Iterations:  iters,
			BytesPerOp:  -1,
			AllocsPerOp: -1,
		}
		res.IOBound = ioBound(pkg, res.Name)
		for i := 2; i+1 < len(fields); i += 2 {
			value, unit := fields[i], fields[i+1]
			switch unit {
			case "ns/op":
				res.NsPerOp, _ = strconv.ParseFloat(value, 64)
			case "B/op":
				res.BytesPerOp, _ = strconv.ParseInt(value, 10, 64)
			case "allocs/op":
				res.AllocsPerOp, _ = strconv.ParseInt(value, 10, 64)
			default:
				v, err := strconv.ParseFloat(value, 64)
				if err != nil || !strings.Contains(unit, "/") {
					continue // not a metric column
				}
				if res.Extra == nil {
					res.Extra = make(map[string]float64)
				}
				res.Extra[unit] = v
			}
		}
		results = append(results, res)
	}
	return results
}

// trimProcSuffix drops the trailing -<GOMAXPROCS> go test appends to
// benchmark names, keeping names stable across machines.
func trimProcSuffix(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
