package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: example.com/x
cpu: Intel(R) Xeon(R)
BenchmarkSampleTargets/plain-8         	  883305	       411.4 ns/op	      80 B/op	       1 allocs/op
BenchmarkHandlePushDuplicate-8         	  155725	      2314 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem 	    2000	     24003 ns/op
BenchmarkCustomMetric-8 	 100	 50737 ns/op	 12.5 msgs/peer	 9606 B/op	 24 allocs/op
PASS
`
	got := parseBenchOutput("./internal/engine", out)
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkSampleTargets/plain" || first.Iterations != 883305 ||
		first.NsPerOp != 411.4 || first.BytesPerOp != 80 || first.AllocsPerOp != 1 {
		t.Fatalf("first = %+v", first)
	}
	if got[1].AllocsPerOp != 0 || got[1].BytesPerOp != 0 {
		t.Fatalf("zero-alloc line = %+v", got[1])
	}
	noMem := got[2]
	if noMem.Name != "BenchmarkNoMem" || noMem.BytesPerOp != -1 || noMem.AllocsPerOp != -1 {
		t.Fatalf("no-benchmem line = %+v", noMem)
	}
	custom := got[3]
	if custom.NsPerOp != 50737 || custom.BytesPerOp != 9606 || custom.AllocsPerOp != 24 {
		t.Fatalf("custom-metric line = %+v", custom)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX":              "BenchmarkX",
		"BenchmarkX/sub-16":       "BenchmarkX/sub",
		"BenchmarkX/case-a":       "BenchmarkX/case-a",
		"BenchmarkY/carried=64-4": "BenchmarkY/carried=64",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Fatalf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareResults(t *testing.T) {
	baseline := []Result{
		{Package: "p", Name: "BenchmarkA", NsPerOp: 100, AllocsPerOp: 4},
		{Package: "p", Name: "BenchmarkB", NsPerOp: 100, AllocsPerOp: 0},
		{Package: "q", Name: "BenchmarkC", NsPerOp: 100, AllocsPerOp: -1},
		{Package: "q", Name: "BenchmarkGone", NsPerOp: 10, AllocsPerOp: 1},
	}
	fresh := []Result{
		// A: ns within threshold, allocs regressed (4 → 6 is +50%).
		{Package: "p", Name: "BenchmarkA", NsPerOp: 120, AllocsPerOp: 6},
		// B: ns regressed, allocs stayed at zero.
		{Package: "p", Name: "BenchmarkB", NsPerOp: 130, AllocsPerOp: 0},
		// C: faster, and no alloc data on either side.
		{Package: "q", Name: "BenchmarkC", NsPerOp: 80, AllocsPerOp: -1},
		// New benchmark without a baseline entry: ignored.
		{Package: "q", Name: "BenchmarkNew", NsPerOp: 1, AllocsPerOp: 0},
	}
	regs, missing := compareResults(baseline, fresh, 0.25)
	if len(missing) != 1 || missing[0] != "q BenchmarkGone" {
		t.Fatalf("missing = %v", missing)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v", regs)
	}
	if regs[0].Name != "BenchmarkA" || regs[0].Metric != "allocs/op" {
		t.Fatalf("first regression = %+v", regs[0])
	}
	if regs[1].Name != "BenchmarkB" || regs[1].Metric != "ns/op" {
		t.Fatalf("second regression = %+v", regs[1])
	}
}

func TestCompareResultsZeroAllocRegression(t *testing.T) {
	// A zero-alloc hot path is a load-bearing claim: any new allocation
	// regresses it, whatever the threshold.
	baseline := []Result{{Package: "p", Name: "BenchmarkZ", NsPerOp: 10, AllocsPerOp: 0}}
	fresh := []Result{{Package: "p", Name: "BenchmarkZ", NsPerOp: 10, AllocsPerOp: 1}}
	regs, _ := compareResults(baseline, fresh, 0.25)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("regressions = %v", regs)
	}
	if got := regs[0].String(); got == "" {
		t.Fatal("empty rendering")
	}
}

func TestPackagesOf(t *testing.T) {
	results := []Result{
		{Package: "a"}, {Package: "b"}, {Package: "a"}, {Package: "c"},
	}
	got := packagesOf(results)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("packages = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("packages = %v, want %v", got, want)
		}
	}
}
