package main

import "testing"

func TestParseBenchOutput(t *testing.T) {
	out := `goos: linux
goarch: amd64
pkg: example.com/x
cpu: Intel(R) Xeon(R)
BenchmarkSampleTargets/plain-8         	  883305	       411.4 ns/op	      80 B/op	       1 allocs/op
BenchmarkHandlePushDuplicate-8         	  155725	      2314 ns/op	       0 B/op	       0 allocs/op
BenchmarkNoMem 	    2000	     24003 ns/op
BenchmarkCustomMetric-8 	 100	 50737 ns/op	 12.5 msgs/peer	 9606 B/op	 24 allocs/op
PASS
`
	got := parseBenchOutput("./internal/engine", out)
	if len(got) != 4 {
		t.Fatalf("parsed %d results, want 4", len(got))
	}
	first := got[0]
	if first.Name != "BenchmarkSampleTargets/plain" || first.Iterations != 883305 ||
		first.NsPerOp != 411.4 || first.BytesPerOp != 80 || first.AllocsPerOp != 1 {
		t.Fatalf("first = %+v", first)
	}
	if got[1].AllocsPerOp != 0 || got[1].BytesPerOp != 0 {
		t.Fatalf("zero-alloc line = %+v", got[1])
	}
	noMem := got[2]
	if noMem.Name != "BenchmarkNoMem" || noMem.BytesPerOp != -1 || noMem.AllocsPerOp != -1 {
		t.Fatalf("no-benchmem line = %+v", noMem)
	}
	custom := got[3]
	if custom.NsPerOp != 50737 || custom.BytesPerOp != 9606 || custom.AllocsPerOp != 24 {
		t.Fatalf("custom-metric line = %+v", custom)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":            "BenchmarkX",
		"BenchmarkX":              "BenchmarkX",
		"BenchmarkX/sub-16":       "BenchmarkX/sub",
		"BenchmarkX/case-a":       "BenchmarkX/case-a",
		"BenchmarkY/carried=64-4": "BenchmarkY/carried=64",
	} {
		if got := trimProcSuffix(in); got != want {
			t.Fatalf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}
