package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/p2pgossip/update/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and status code, for tests.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenarios", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "seed for every scenario run")
	seeds := fs.String("seeds", "", "comma-separated seeds (overrides -seed)")
	only := fs.String("scenario", "", "run only the named scenario")
	outDir := fs.String("out", "", "directory for per-run JSON files (default: stdout)")
	list := fs.Bool("list", false, "list the scenario catalog and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	catalog := scenario.Catalog()
	if *list {
		for _, sc := range catalog {
			fmt.Fprintf(stdout, "%-22s %s\n", sc.Name, sc.Description)
		}
		return 0
	}
	if *only != "" {
		sc, ok := scenario.Find(*only)
		if !ok {
			fmt.Fprintf(stderr, "scenarios: unknown scenario %q (use -list)\n", *only)
			return 2
		}
		catalog = []scenario.Scenario{sc}
	}
	seedList, err := parseSeeds(*seeds, *seed)
	if err != nil {
		fmt.Fprintf(stderr, "scenarios: %v\n", err)
		return 2
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(stderr, "scenarios: %v\n", err)
			return 2
		}
	}

	failed := 0
	for _, sc := range catalog {
		for _, s := range seedList {
			res, err := scenario.Run(sc, s)
			if err != nil {
				fmt.Fprintf(stderr, "scenarios: %s seed %d: %v\n", sc.Name, s, err)
				return 2
			}
			raw, err := res.JSON()
			if err != nil {
				fmt.Fprintf(stderr, "scenarios: %s seed %d: %v\n", sc.Name, s, err)
				return 2
			}
			if *outDir == "" {
				if _, err := stdout.Write(raw); err != nil {
					fmt.Fprintf(stderr, "scenarios: %v\n", err)
					return 2
				}
			} else {
				name := filepath.Join(*outDir, fmt.Sprintf("%s-seed%d.json", sc.Name, s))
				if err := os.WriteFile(name, raw, 0o644); err != nil {
					fmt.Fprintf(stderr, "scenarios: %v\n", err)
					return 2
				}
			}
			if !res.Passed {
				failed++
				for _, inv := range res.Invariants {
					if !inv.Passed {
						fmt.Fprintf(stderr, "FAIL %s seed %d: %s: %s\n",
							sc.Name, s, inv.Name, inv.Detail)
					}
				}
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "scenarios: %d run(s) violated invariants\n", failed)
		return 1
	}
	fmt.Fprintf(stderr, "scenarios: %d scenario(s) × %d seed(s) all green\n",
		len(catalog), len(seedList))
	return 0
}

// parseSeeds parses the -seeds list, falling back to the single -seed value.
func parseSeeds(list string, fallback int64) ([]int64, error) {
	if list == "" {
		return []int64{fallback}, nil
	}
	parts := strings.Split(list, ",")
	out := make([]int64, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		s, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %v", p, err)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty seed list %q", list)
	}
	return out, nil
}
