package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseSeeds(t *testing.T) {
	got, err := parseSeeds("1, 2,3", 9)
	if err != nil || len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("parseSeeds = %v, %v", got, err)
	}
	got, err = parseSeeds("", 9)
	if err != nil || len(got) != 1 || got[0] != 9 {
		t.Fatalf("fallback = %v, %v", got, err)
	}
	if _, err := parseSeeds("x", 1); err == nil {
		t.Fatal("bad seed accepted")
	}
	if _, err := parseSeeds(",", 1); err == nil {
		t.Fatal("empty list accepted")
	}
}

func TestListAndUnknownScenario(t *testing.T) {
	var out, errs bytes.Buffer
	if code := run([]string{"-list"}, &out, &errs); code != 0 {
		t.Fatalf("-list exit %d: %s", code, errs.String())
	}
	if !strings.Contains(out.String(), "combined-chaos") {
		t.Fatalf("-list output missing scenarios:\n%s", out.String())
	}
	if code := run([]string{"-scenario", "nope"}, &out, &errs); code != 2 {
		t.Fatalf("unknown scenario exit %d", code)
	}
}

// TestRunWritesDeterministicFiles runs one scenario twice into separate
// directories and requires byte-identical artifacts — the `-seed S ⇒
// identical JSON` acceptance contract, exercised at the CLI layer.
func TestRunWritesDeterministicFiles(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	var out, errs bytes.Buffer
	args := func(dir string) []string {
		return []string{"-scenario", "steady-state", "-seed", "5", "-out", dir}
	}
	if code := run(args(dirA), &out, &errs); code != 0 {
		t.Fatalf("first run exit %d: %s", code, errs.String())
	}
	if code := run(args(dirB), &out, &errs); code != 0 {
		t.Fatalf("second run exit %d: %s", code, errs.String())
	}
	name := "steady-state-seed5.json"
	a, err := os.ReadFile(filepath.Join(dirA, name))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dirB, name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed produced different artifacts:\n%s\nvs\n%s", a, b)
	}
	if !strings.Contains(string(a), `"passed": true`) {
		t.Fatalf("artifact did not pass:\n%s", a)
	}
}

// TestRunStdout covers the stdout mode and the multi-seed matrix.
func TestRunStdout(t *testing.T) {
	var out, errs bytes.Buffer
	code := run([]string{"-scenario", "lossy-links", "-seeds", "1,2"}, &out, &errs)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errs.String())
	}
	if got := strings.Count(out.String(), `"scenario": "lossy-links"`); got != 2 {
		t.Fatalf("stdout holds %d documents, want 2", got)
	}
}
