// Command scenarios executes the deterministic fault-injection scenario
// matrix (internal/scenario) and emits one JSON document per run.
//
// Usage:
//
//	go run ./cmd/scenarios [flags]
//
//	-seed S        run every scenario under seed S (default 1)
//	-seeds 1,2,3   run every scenario under each listed seed (overrides -seed)
//	-scenario X    run only the named scenario
//	-out DIR       write one <scenario>-seed<S>.json per run into DIR
//	               (created if missing); default prints documents to stdout
//	-list          print the catalog (name and description) and exit
//
// The process exits 0 when every invariant of every run passed and 1
// otherwise, with a summary line per failed run on stderr — the CI gate.
// Results are deterministic: the same binary, scenario, and seed produce
// byte-identical JSON, so scenario output can be diffed across commits.
//
// Examples:
//
//	go run ./cmd/scenarios -list
//	go run ./cmd/scenarios -scenario split-brain-and-heal -seed 7
//	go run ./cmd/scenarios -seeds 1,2,3 -out scenario-results
package main
