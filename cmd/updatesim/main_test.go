package main

import (
	"strings"
	"testing"
)

func TestRunDefaultScenario(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-r", "500", "-online", "100", "-fr", "0.05", "-seed", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Simulated push: R=500") {
		t.Fatalf("header missing:\n%s", got)
	}
	if !strings.Contains(got, "simulated:") || !strings.Contains(got, "analytic :") {
		t.Fatalf("cross-check lines missing:\n%s", got)
	}
}

func TestRunWithScheduleAndList(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-r", "400", "-online", "400", "-sigma", "1",
		"-fr", "0.01", "-pf", "geom:0.9", "-partial-list", "-seed", "5"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "partial-list=true") {
		t.Fatalf("options not echoed:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-pf", "junk"}, &out); err == nil {
		t.Fatal("bad schedule should error")
	}
	if err := run([]string{"-r", "0"}, &out); err == nil {
		t.Fatal("bad population should error")
	}
	if err := run([]string{"-nope"}, &out); err == nil {
		t.Fatal("unknown flag should error")
	}
}
