// Command updatesim runs one stochastic push-phase scenario on the discrete
// simulator and prints the per-round trajectory next to the analytical
// prediction.
//
// Usage:
//
//	updatesim -r 2000 -online 200 -sigma 0.95 -fr 0.05 -partial-list
//	updatesim -r 1000 -online 1000 -sigma 1 -fr 0.004 -pf geom:0.9 -seed 7
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/p2pgossip/update/internal/experiments"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/pfparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "updatesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("updatesim", flag.ContinueOnError)
	r := fs.Int("r", 2000, "total number of replicas R")
	online := fs.Int("online", 200, "initially online replicas")
	sigma := fs.Float64("sigma", 0.95, "probability of staying online per round")
	fr := fs.Float64("fr", 0.05, "fanout fraction f_r")
	pfSpec := fs.String("pf", "const:1", "forwarding probability schedule (see cmd/analytic)")
	partial := fs.Bool("partial-list", false, "enable the partial flooding list")
	rounds := fs.Int("rounds", 60, "maximum simulation rounds")
	viewSize := fs.Int("view", 0, "initial membership view size (0 = complete)")
	seed := fs.Int64("seed", 1, "random seed")
	traceN := fs.Int("trace", 0, "print the last N simulation events")
	if err := fs.Parse(args); err != nil {
		return err
	}

	schedule, err := pfparse.Parse(*pfSpec)
	if err != nil {
		return err
	}
	params := experiments.SimParams{
		R: *r, ROn0: *online, Sigma: *sigma, Fr: *fr,
		NewPF:       func() pf.Func { return schedule },
		PartialList: *partial, Rounds: *rounds, ViewSize: *viewSize, Seed: *seed,
		TraceEvents: *traceN,
	}
	sim, err := experiments.SimulatePush(params)
	if err != nil {
		return err
	}
	anaMsgs, simMsgs, anaAware, simAware, err := experiments.CrossCheck(params)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Simulated push: R=%d R_on[0]=%d sigma=%g f_r=%g PF=%s partial-list=%v seed=%d\n",
		*r, *online, *sigma, *fr, schedule, *partial, *seed)
	tb := &metrics.Table{Header: []string{"round", "F_aware(online)", "cum msgs/R_on0"}}
	for i, p := range sim.Curve.Points {
		tb.AddRow(i, p.X, p.Y)
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "simulated: %.3f msgs/peer, F_aware=%.4f in %d rounds\n",
		simMsgs, simAware, sim.Rounds)
	fmt.Fprintf(out, "analytic : %.3f msgs/peer, F_aware=%.4f\n", anaMsgs, anaAware)
	if *traceN > 0 && sim.Trace != nil {
		fmt.Fprintf(out, "\nlast %d simulation events:\n%s", *traceN, sim.Trace.Render())
	}
	return nil
}
