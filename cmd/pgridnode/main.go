// Command pgridnode runs one live replica over TCP, suitable for trying the
// protocol across real processes or machines.
//
// Start a few nodes and wire them together:
//
//	pgridnode -listen 127.0.0.1:7001
//	pgridnode -listen 127.0.0.1:7002 -peers 127.0.0.1:7001
//	pgridnode -listen 127.0.0.1:7003 -peers 127.0.0.1:7001,127.0.0.1:7002
//
// Then type commands on stdin:
//
//	put <key> <value>   publish an update
//	del <key>           publish a tombstone
//	get <key>           read the local winning revision
//	query <key>         consult 3 replicas, return the freshest revision
//	keys                list live keys
//	peers               list known replicas
//	pull                pull immediately
//	quit                exit
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	pushpull "github.com/p2pgossip/update"
	"github.com/p2pgossip/update/internal/pfparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pgridnode:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("pgridnode", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:0", "address to listen on")
	peers := fs.String("peers", "", "comma-separated bootstrap peer addresses")
	fanout := fs.Int("fanout", 5, "push fanout")
	pfSpec := fs.String("pf", "geom:0.9", "forwarding probability schedule")
	pullSecs := fs.Duration("pull-interval", 0, "anti-entropy period (0 = default 30s)")
	snapshot := fs.String("snapshot", "", "state file: restored at start, written at quit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	schedule, err := pfparse.Parse(*pfSpec)
	if err != nil {
		return err
	}
	opts := []pushpull.Option{
		pushpull.WithTCP(*listen),
		pushpull.WithFanout(*fanout),
		pushpull.WithPF(func() pushpull.PFFunc { return schedule }),
	}
	if *pullSecs > 0 {
		opts = append(opts, pushpull.WithPullInterval(*pullSecs))
	}
	if *peers != "" {
		opts = append(opts, pushpull.WithPeers(strings.Split(*peers, ",")...))
	}
	var snapFile *os.File
	if *snapshot != "" {
		// A missing state file is fine on first start.
		f, err := os.Open(*snapshot)
		switch {
		case err == nil:
			snapFile = f
			opts = append(opts, pushpull.WithSnapshot(f))
		case !os.IsNotExist(err):
			return fmt.Errorf("open snapshot: %w", err)
		}
	}
	node, err := pushpull.Open(opts...)
	if snapFile != nil {
		snapFile.Close()
	}
	if err != nil {
		return err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = node.Close(ctx)
	}()

	fmt.Fprintf(out, "replica listening on %s (%d known peers)\n",
		node.Addr(), len(node.Peers()))
	if err := repl(node, in, out); err != nil {
		return err
	}
	if *snapshot != "" {
		return saveSnapshot(node, *snapshot)
	}
	return nil
}

// saveSnapshot writes the state file atomically (temp + rename).
func saveSnapshot(n *pushpull.Node, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("create snapshot: %w", err)
	}
	if err := n.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("rename snapshot: %w", err)
	}
	return nil
}

func repl(n *pushpull.Node, in io.Reader, out io.Writer) error {
	ctx := context.Background()
	scanner := bufio.NewScanner(in)
	for scanner.Scan() {
		fields := strings.Fields(scanner.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "put":
			if len(fields) < 3 {
				fmt.Fprintln(out, "usage: put <key> <value>")
				continue
			}
			u, err := n.Publish(ctx, fields[1], []byte(strings.Join(fields[2:], " ")))
			if err != nil {
				fmt.Fprintf(out, "publish failed: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "published %s (version %s)\n", u.ID(), u.Version)
		case "del":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: del <key>")
				continue
			}
			u, err := n.Delete(ctx, fields[1])
			if err != nil {
				fmt.Fprintf(out, "delete failed: %v\n", err)
				continue
			}
			fmt.Fprintf(out, "deleted via %s\n", u.ID())
		case "get":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: get <key>")
				continue
			}
			if rev, ok := n.Get(fields[1]); ok {
				fmt.Fprintf(out, "%s = %q (version %s)\n", fields[1], rev.Value, rev.Version)
			} else {
				fmt.Fprintf(out, "%s not found\n", fields[1])
			}
		case "query":
			if len(fields) != 2 {
				fmt.Fprintln(out, "usage: query <key>")
				continue
			}
			qctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			outcome, err := n.Query(qctx, fields[1], 3)
			cancel()
			if err != nil && !errors.Is(err, pushpull.ErrNoPeers) {
				fmt.Fprintf(out, "query failed: %v\n", err)
				continue
			}
			if outcome.Found {
				fmt.Fprintf(out, "%s = %q (%d responses, version %s)\n",
					fields[1], outcome.Revision.Value, outcome.Responses,
					outcome.Revision.Version)
			} else {
				fmt.Fprintf(out, "%s not found (%d responses)\n", fields[1], outcome.Responses)
			}
		case "keys":
			fmt.Fprintln(out, strings.Join(n.Keys(), " "))
		case "peers":
			fmt.Fprintln(out, strings.Join(n.Peers(), " "))
		case "pull":
			if err := n.Pull(ctx); err != nil && !errors.Is(err, pushpull.ErrNoPeers) {
				fmt.Fprintf(out, "pull failed: %v\n", err)
				continue
			}
			fmt.Fprintln(out, "pull issued")
		case "quit", "exit":
			return nil
		default:
			fmt.Fprintf(out, "unknown command %q\n", fields[0])
		}
	}
	return scanner.Err()
}
