package main

import (
	"strings"
	"testing"
)

func TestNodeREPLCommands(t *testing.T) {
	script := strings.Join([]string{
		"put city Lausanne",
		"get city",
		"query city",
		"query",
		"keys",
		"peers",
		"pull",
		"del city",
		"get city",
		"badcmd",
		"put",
		"del",
		"get",
		"quit",
	}, "\n")
	var out strings.Builder
	err := run([]string{"-listen", "127.0.0.1:0", "-pull-interval", "50ms"},
		strings.NewReader(script), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	for _, want := range []string{
		"replica listening on",
		"published",
		`city = "Lausanne"`,
		"usage: query <key>",
		"deleted via",
		"city not found",
		`unknown command "badcmd"`,
		"usage: put <key> <value>",
		"usage: del <key>",
		"usage: get <key>",
		"pull issued",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestNodeBootstrapPeers(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-listen", "127.0.0.1:0", "-peers", "10.0.0.1:1,10.0.0.2:2"},
		strings.NewReader("peers\nquit\n"), &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "10.0.0.1:1 10.0.0.2:2") {
		t.Fatalf("bootstrap peers missing:\n%s", out.String())
	}
}

func TestNodeBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-pf", "junk"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("bad schedule should error")
	}
	if err := run([]string{"-listen", "999.999.999.999:1"}, strings.NewReader(""), &out); err == nil {
		t.Fatal("bad listen address should error")
	}
}

func TestNodeSnapshotPersistence(t *testing.T) {
	path := t.TempDir() + "/state.snap"
	var out strings.Builder
	err := run([]string{"-listen", "127.0.0.1:0", "-snapshot", path},
		strings.NewReader("put motto persistence\nquit\n"), &out)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	// Second process restores the state.
	out.Reset()
	err = run([]string{"-listen", "127.0.0.1:0", "-snapshot", path},
		strings.NewReader("get motto\nquit\n"), &out)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !strings.Contains(out.String(), `motto = "persistence"`) {
		t.Fatalf("state not restored:\n%s", out.String())
	}
}
