package main

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	got := out.String()
	if !strings.Contains(got, "Push phase: R=10000") {
		t.Fatalf("header missing:\n%s", got)
	}
	if !strings.Contains(got, "F_aware") || !strings.Contains(got, "per initially-online peer") {
		t.Fatalf("summary missing:\n%s", got)
	}
}

func TestRunWithSchedule(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-pf", "geom:0.9", "-partial-list", "-r", "1000",
		"-online", "1000", "-sigma", "1", "-fr", "0.004"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "PF=PF(t)=0.9^t") {
		t.Fatalf("schedule not echoed:\n%s", out.String())
	}
}

func TestRunWithThreshold(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-partial-list", "-lthr", "0.05"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// L(t) column must be capped at the threshold.
	if strings.Contains(out.String(), "0.0773") {
		t.Fatalf("threshold not applied:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-pf", "nonsense:1"}, &out); err == nil {
		t.Fatal("bad schedule should error")
	}
	if err := run([]string{"-r", "-5"}, &out); err == nil {
		t.Fatal("bad population should error")
	}
	if err := run([]string{"-bogus"}, &out); err == nil {
		t.Fatal("unknown flag should error")
	}
}
