// Command analytic evaluates the paper's recursive push-phase model — the
// Go counterpart of the C program the authors used for §5 — and prints the
// round-by-round trajectory.
//
// Usage:
//
//	analytic -r 10000 -online 1000 -sigma 0.95 -fr 0.01
//	analytic -r 10000 -online 1000 -pf 'geom:0.9' -partial-list
//	analytic -r 100000000 -online 10000000 -sigma 1 -pf 'affine:0.8,0.7,0.2' \
//	         -fr 0.00001
//
// PF schedules: 'const:C', 'lin:START,SLOPE', 'geom:BASE',
// 'affine:A,B,C', 'ttl:ROUNDS', 'haas:P,K'.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/p2pgossip/update/internal/analytic"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/pfparse"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "analytic:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("analytic", flag.ContinueOnError)
	r := fs.Int("r", 10_000, "total number of replicas R")
	online := fs.Int("online", 1000, "initially online replicas R_on[0]")
	sigma := fs.Float64("sigma", 0.95, "probability of staying online per round")
	fr := fs.Float64("fr", 0.01, "fanout fraction f_r")
	pfSpec := fs.String("pf", "const:1", "forwarding probability schedule")
	partial := fs.Bool("partial-list", false, "enable the partial flooding list")
	lthr := fs.Float64("lthr", 0, "normalised list threshold L_thr (0 = unlimited)")
	updateBytes := fs.Int("update-bytes", 100, "update payload size U for S_M(t)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	schedule, err := pfparse.Parse(*pfSpec)
	if err != nil {
		return err
	}
	res, err := analytic.Push(analytic.PushParams{
		R: *r, ROn0: *online, Sigma: *sigma, Fr: *fr,
		PF: schedule, PartialList: *partial, ListThreshold: *lthr,
		UpdateBytes: *updateBytes,
	})
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "Push phase: R=%d R_on[0]=%d sigma=%g f_r=%g PF=%s partial-list=%v\n",
		*r, *online, *sigma, *fr, schedule, *partial)
	tb := &metrics.Table{Header: []string{
		"t", "M(t)", "cum M", "cum M/R_on0", "dF_aware", "F_aware", "L(t)", "S_M(t) bytes",
	}}
	for _, round := range res.Rounds {
		tb.AddRow(round.T, round.Messages, round.CumMessages,
			round.CumMessages/float64(*online), round.DeltaAware,
			round.Aware, round.ListLen, round.MessageBytes)
	}
	fmt.Fprint(out, tb.String())
	fmt.Fprintf(out, "total: %.1f messages, %.3f per initially-online peer, F_aware=%.4f in %d rounds\n",
		res.TotalMessages(), res.MessagesPerOnlinePeer(), res.FinalAware(), res.NumRounds())
	return nil
}
