package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/p2pgossip/update/internal/serve"
)

// startDaemon runs the daemon in-process and returns its bound HTTP base
// URL plus a shutdown function that performs the graceful-drain path.
func startDaemon(t *testing.T, args ...string) (string, func() int) {
	t.Helper()
	pr, pw := io.Pipe()
	stop := make(chan struct{})
	code := make(chan int, 1)
	go func() {
		code <- run(append([]string{"-http", "127.0.0.1:0", "-gossip", "127.0.0.1:0"}, args...),
			pw, io.Discard, stop)
	}()
	line, err := bufio.NewReader(pr).ReadString('\n')
	if err != nil {
		t.Fatalf("daemon never became ready: %v", err)
	}
	httpAddr, _, err := parseReadyLine(line)
	if err != nil {
		t.Fatal(err)
	}
	var stopped bool
	shutdown := func() int {
		if stopped {
			return 0
		}
		stopped = true
		close(stop)
		select {
		case c := <-code:
			return c
		case <-time.After(15 * time.Second):
			t.Fatal("daemon did not drain")
			return -1
		}
	}
	t.Cleanup(func() { shutdown() })
	return "http://" + httpAddr, shutdown
}

func parseReadyLine(line string) (httpAddr, gossipAddr string, err error) {
	fields := strings.Fields(strings.TrimSpace(line))
	for _, f := range fields {
		if v, ok := strings.CutPrefix(f, "http="); ok {
			httpAddr = v
		}
		if v, ok := strings.CutPrefix(f, "gossip="); ok {
			gossipAddr = v
		}
	}
	if httpAddr == "" || gossipAddr == "" {
		return "", "", fmt.Errorf("malformed ready line %q", line)
	}
	return httpAddr, gossipAddr, nil
}

func TestDaemonServesAndSnapshotsAcrossRestart(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "state.snap")
	base, shutdown := startDaemon(t, "-snapshot", snap, "-pull-interval", "50ms")

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: %d", resp.StatusCode)
	}

	// Write a key through the edge.
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/kv/boot/count", bytes.NewReader([]byte("1")))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: %d", resp.StatusCode)
	}

	// Graceful shutdown must leave a snapshot behind.
	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}
	if fi, err := os.Stat(snap); err != nil || fi.Size() == 0 {
		t.Fatalf("snapshot not written: %v", err)
	}

	// A new incarnation restores it and reports the restored count.
	base2, _ := startDaemon(t, "-snapshot", snap)
	resp, err = http.Get(base2 + "/v1/kv/boot/count")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "1" {
		t.Fatalf("restored get: %d %q", resp.StatusCode, body)
	}
	resp, err = http.Get(base2 + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	var state serve.State
	err = json.NewDecoder(resp.Body).Decode(&state)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if state.Restored != 1 || state.UpdateCount != 1 {
		t.Fatalf("state after restore = %+v", state)
	}
}

func TestDaemonStrictRestoreRejectsUnusableSnapshot(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "corrupt.snap")
	if err := os.WriteFile(bad, []byte("definitely not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	code := run([]string{"-http", "127.0.0.1:0", "-gossip", "127.0.0.1:0", "-snapshot", bad, "-strict-restore"},
		io.Discard, io.Discard, nil)
	if code != 1 {
		t.Fatalf("exit code %d, want 1", code)
	}
}

func TestDaemonWarnsAndStartsEmptyOnUnusableSnapshot(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "corrupt.snap")
	if err := os.WriteFile(bad, []byte("definitely not gob"), 0o644); err != nil {
		t.Fatal(err)
	}
	base, shutdown := startDaemon(t, "-snapshot", bad)
	resp, err := http.Get(base + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	var state serve.State
	err = json.NewDecoder(resp.Body).Decode(&state)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if state.Restored != 0 || state.UpdateCount != 0 {
		t.Fatalf("state after skipped restore = %+v", state)
	}
	// The graceful shutdown replaces the corrupt file with a valid (empty)
	// snapshot.
	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}
}

func TestDaemonWALRecoversAcrossRestart(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	base, shutdown := startDaemon(t, "-wal-dir", walDir, "-fsync", "never")

	req, _ := http.NewRequest(http.MethodPut, base+"/v1/kv/boot/count", bytes.NewReader([]byte("1")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("put: %d", resp.StatusCode)
	}
	if code := shutdown(); code != 0 {
		t.Fatalf("daemon exit code %d", code)
	}

	// A new incarnation replays the WAL: same value, counted as restored.
	base2, _ := startDaemon(t, "-wal-dir", walDir, "-fsync", "never")
	resp, err = http.Get(base2 + "/v1/kv/boot/count")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "1" {
		t.Fatalf("recovered get: %d %q", resp.StatusCode, body)
	}
	resp, err = http.Get(base2 + "/v1/state")
	if err != nil {
		t.Fatal(err)
	}
	var state serve.State
	err = json.NewDecoder(resp.Body).Decode(&state)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if state.Restored != 1 || state.UpdateCount != 1 {
		t.Fatalf("state after wal recovery = %+v", state)
	}
}

func TestDaemonRejectsBadFsyncPolicy(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "wal")
	code := run([]string{"-http", "127.0.0.1:0", "-gossip", "127.0.0.1:0", "-wal-dir", dir, "-fsync", "sometimes"},
		io.Discard, io.Discard, nil)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestDaemonBadFlags(t *testing.T) {
	if code := run([]string{"-definitely-not-a-flag"}, io.Discard, io.Discard, nil); code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
}

func TestSplitPeers(t *testing.T) {
	got := splitPeers(" a:1, ,b:2,,")
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("splitPeers = %v", got)
	}
	if splitPeers("") != nil {
		t.Fatal("splitPeers(\"\") should be nil")
	}
}
