// Command pushpulld is the serving daemon: one live protocol replica
// (internal/live over TCP) fronted by the HTTP client edge and Prometheus
// metrics of internal/serve. It is the deployment entry point for the
// paper's hybrid push/pull dissemination — clients PUT/GET/DELETE and
// watch through HTTP while replicas gossip among themselves on the wire
// protocol.
//
//	pushpulld -http 127.0.0.1:8080 -gossip 127.0.0.1:7946 \
//	    -peers 10.0.0.2:7946,10.0.0.3:7946 -wal-dir /var/lib/pushpull/wal
//
// With -wal-dir the daemon is crash-consistent: every accepted update is
// appended to a write-ahead log (fsync policy per -fsync) before the apply
// is acknowledged, and startup restores the latest checkpoint and replays
// the surviving log — a kill -9 loses nothing acknowledged. Without it,
// -snapshot provides graceful-shutdown-only persistence: restored on start
// if the file exists (counting the restored updates for /v1/state), written
// atomically on SIGINT/SIGTERM before draining. The line
//
//	pushpulld ready http=HOST:PORT gossip=HOST:PORT
//
// is printed to stdout once both listeners are live; the soak harness and
// the examples parse it to discover ephemeral ports.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	pushpull "github.com/p2pgossip/update"
	"github.com/p2pgossip/update/internal/pf"
	"github.com/p2pgossip/update/internal/serve"
	"github.com/p2pgossip/update/internal/store"
	"github.com/p2pgossip/update/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run is the testable daemon body. When ready is non-nil it receives the
// bound addresses once serving; the process exits when a signal arrives or
// stop (if non-nil) closes.
func run(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("pushpulld", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		httpAddr     = fs.String("http", "127.0.0.1:8080", "HTTP client-edge listen address")
		gossipAddr   = fs.String("gossip", "127.0.0.1:0", "replica gossip listen address (TCP)")
		peers        = fs.String("peers", "", "comma-separated gossip addresses of other replicas")
		fanout       = fs.Int("fanout", 5, "peers each push targets (the paper's R·f_r)")
		pfBase       = fs.Float64("pf", 0.9, "geometric forwarding-probability base PF(t)=base^t; >=1 forwards always")
		pullInterval = fs.Duration("pull-interval", 30*time.Second, "anti-entropy pull period (0 disables)")
		pullAttempts = fs.Int("pull-attempts", 3, "peers contacted per pull batch")
		acks         = fs.Bool("acks", false, "enable the §6 acknowledgement optimisation")
		listMax      = fs.Int("list-max", 0, "cap on flooding-list entries per push (0 = unlimited)")
		seed         = fs.Int64("seed", 0, "PRNG seed; 0 draws from crypto/rand")
		snapshotPath = fs.String("snapshot", "", "snapshot file: restored on start if present, written on graceful shutdown")

		janitorInterval = fs.Duration("janitor-interval", time.Minute, "maintenance pass period: TTL expiry, tombstone GC, log compaction (0 disables)")
		tombstoneTTL    = fs.Duration("tombstone-retention", 0, "how long tombstones outlive their delete before collection (0 = store default)")
		keyTTL          = fs.Duration("key-ttl", 0, "expire live keys older than this into tombstones (0 disables)")
		snapCatchUp     = fs.Int("snapshot-catchup", 1024, "pull deltas above this many updates are served as one snapshot frame (0 disables the size trigger)")

		walDir        = fs.String("wal-dir", "", "write-ahead-log directory; enables crash-consistent durability (supersedes -snapshot restore)")
		fsyncPolicy   = fs.String("fsync", "interval", "WAL fsync policy: always (group commit per append), interval (timer-bounded loss window), never (kernel-paced)")
		fsyncInterval = fs.Duration("fsync-interval", wal.DefaultSyncInterval, "flush period under -fsync interval")
		walSegment    = fs.Int64("wal-segment", wal.DefaultSegmentBytes, "WAL segment size in bytes; sealed segments are pruned by checkpoints")
		walCheckpoint = fs.Int64("wal-checkpoint", 0, "resident WAL bytes that trigger a janitor checkpoint (0 = built-in default)")
		strictRestore = fs.Bool("strict-restore", false, "exit instead of starting empty when the -snapshot file exists but is unusable")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	opts := []pushpull.Option{
		pushpull.WithTCP(*gossipAddr),
		pushpull.WithFanout(*fanout),
		pushpull.WithPullInterval(*pullInterval),
		pushpull.WithPullAttempts(*pullAttempts),
		pushpull.WithAcks(*acks),
		pushpull.WithSeed(*seed),
		pushpull.WithJanitorInterval(*janitorInterval),
		pushpull.WithTombstoneRetention(*tombstoneTTL),
		pushpull.WithKeyTTL(*keyTTL),
		pushpull.WithSnapshotCatchUp(*snapCatchUp),
	}
	if *pfBase < 1 {
		base := *pfBase
		opts = append(opts, pushpull.WithPF(func() pushpull.PFFunc {
			return pf.Geometric{Base: base}
		}))
	} else {
		opts = append(opts, pushpull.WithPF(nil)) // PF(t) = 1
	}
	if *listMax > 0 {
		opts = append(opts, pushpull.WithListMax(*listMax))
	}
	if addrs := splitPeers(*peers); len(addrs) > 0 {
		opts = append(opts, pushpull.WithPeers(addrs...))
	}

	reg := pushpull.NewMetrics()
	opts = append(opts, pushpull.WithMetrics(reg))

	// With a WAL the checkpoint + log replay is the authoritative restore
	// path; otherwise restore a previous incarnation's snapshot, counting the
	// restored updates so /v1/state can reconcile apply counters across the
	// restart.
	var walLog *pushpull.WAL
	restored := 0
	switch {
	case *walDir != "":
		if *snapshotPath != "" {
			fmt.Fprintf(stderr, "pushpulld: -wal-dir set; ignoring -snapshot restore (still written on graceful shutdown)\n")
		}
		policy, err := wal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			fmt.Fprintf(stderr, "pushpulld: %v\n", err)
			return 2
		}
		walLog, err = pushpull.OpenWAL(pushpull.WALOptions{
			Dir:          *walDir,
			Policy:       policy,
			Interval:     *fsyncInterval,
			SegmentBytes: *walSegment,
			Metrics:      reg,
		})
		if err != nil {
			fmt.Fprintf(stderr, "pushpulld: open wal %s: %v\n", *walDir, err)
			return 1
		}
		defer walLog.Close()
		opts = append(opts, pushpull.WithWAL(walLog), pushpull.WithWALCheckpoint(*walCheckpoint))
	case *snapshotPath != "":
		raw, err := os.ReadFile(*snapshotPath)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// First boot: nothing to restore.
		case err != nil:
			fmt.Fprintf(stderr, "pushpulld: read snapshot %s: %v\n", *snapshotPath, err)
			return 1
		default:
			st, err := store.ReadSnapshot(bytes.NewReader(raw), 0)
			switch {
			case err != nil && *strictRestore:
				fmt.Fprintf(stderr, "pushpulld: snapshot %s unusable: %v\n", *snapshotPath, err)
				return 1
			case err != nil:
				fmt.Fprintf(stderr, "pushpulld: snapshot %s unusable (%v); starting empty, anti-entropy will catch up\n", *snapshotPath, err)
			default:
				restored = st.UpdateCount()
				opts = append(opts, pushpull.WithSnapshot(bytes.NewReader(raw)))
			}
		}
	}

	node, err := pushpull.Open(opts...)
	if err != nil {
		fmt.Fprintf(stderr, "pushpulld: open: %v\n", err)
		return 1
	}
	if rec, ok := node.WALRecovery(); ok {
		restored = rec.Restored()
		if restored > 0 || rec.TruncatedBytes > 0 {
			fmt.Fprintf(stderr, "pushpulld: wal recovery: checkpoint=%d replayed=%d duplicates=%d truncated=%dB\n",
				rec.CheckpointRestored, rec.Replayed, rec.Duplicates, rec.TruncatedBytes)
		}
	}

	srv, err := serve.New(serve.Config{
		Node:         node,
		Metrics:      reg,
		Restored:     restored,
		StartUnready: true,
	})
	if err != nil {
		fmt.Fprintf(stderr, "pushpulld: %v\n", err)
		_ = node.Close(context.Background())
		return 1
	}

	ln, err := net.Listen("tcp", *httpAddr)
	if err != nil {
		fmt.Fprintf(stderr, "pushpulld: listen %s: %v\n", *httpAddr, err)
		_ = node.Close(context.Background())
		return 1
	}
	httpServer := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpServer.Serve(ln) }()

	srv.SetReady(true)
	fmt.Fprintf(stdout, "pushpulld ready http=%s gossip=%s\n", ln.Addr(), node.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sigs)

	select {
	case sig := <-sigs:
		fmt.Fprintf(stderr, "pushpulld: %v, draining\n", sig)
	case <-stop:
	case err := <-serveErr:
		fmt.Fprintf(stderr, "pushpulld: http server: %v\n", err)
		_ = node.Close(context.Background())
		return 1
	}

	// Graceful shutdown: stop advertising readiness, persist the log,
	// stop the protocol, then drain HTTP.
	srv.SetReady(false)
	code := 0
	if *snapshotPath != "" {
		if err := writeSnapshotAtomic(node, *snapshotPath); err != nil {
			fmt.Fprintf(stderr, "pushpulld: %v\n", err)
			code = 1
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := node.Close(ctx); err != nil {
		fmt.Fprintf(stderr, "pushpulld: close node: %v\n", err)
		code = 1
	}
	if err := httpServer.Shutdown(ctx); err != nil {
		fmt.Fprintf(stderr, "pushpulld: shutdown http: %v\n", err)
		code = 1
	}
	return code
}

// writeSnapshotAtomic writes the node's snapshot next to path, fsyncs it,
// and renames it into place (fsyncing the directory), so a crash mid-write
// or just after the rename can never leave a truncated or unlinked snapshot
// where the next boot will read it.
func writeSnapshotAtomic(node *pushpull.Node, path string) error {
	if err := wal.WriteFileAtomic(path, node.WriteSnapshot); err != nil {
		return fmt.Errorf("snapshot %s: %w", path, err)
	}
	return nil
}

// splitPeers parses the -peers flag: comma-separated, blanks ignored.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
