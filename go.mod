module github.com/p2pgossip/update

go 1.21
