package pushpull

import (
	"github.com/p2pgossip/update/internal/live"
	"github.com/p2pgossip/update/internal/store"
)

// Source identifies how an update reached the node.
type Source = live.Source

// Update sources.
const (
	// SourceLocal marks updates created by this node's own Publish or
	// Delete.
	SourceLocal = live.SourceLocal
	// SourcePush marks updates received through the constrained-flooding
	// push phase.
	SourcePush = live.SourcePush
	// SourcePull marks updates obtained by anti-entropy pull
	// reconciliation.
	SourcePull = live.SourcePull
)

// EventKind classifies what an arriving update did to the local store.
type EventKind int

// Event kinds.
const (
	// EventApplied means the update was new and changed the store.
	EventApplied EventKind = iota + 1
	// EventDuplicate means the exact update was already known.
	EventDuplicate
	// EventObsolete means the update was causally dominated by an existing
	// revision and changed nothing.
	EventObsolete
)

// String returns the kind name.
func (k EventKind) String() string {
	switch k {
	case EventApplied:
		return "applied"
	case EventDuplicate:
		return "duplicate"
	case EventObsolete:
		return "obsolete"
	default:
		return "unknown"
	}
}

// Event is one observation delivered on a Watch stream: an update offered to
// the node's store, how it got here, and what it did.
type Event struct {
	// Kind classifies the apply outcome.
	Kind EventKind
	// Update is the update itself. Update.Delete marks tombstones.
	Update Update
	// Source tells whether the update was created locally, pushed, or
	// pulled.
	Source Source
	// Branches is the number of coexisting revisions of the key after the
	// apply; a value above 1 signals concurrent (conflicting) versions.
	Branches int
}

// Tombstone reports whether the event carries a delete.
func (e Event) Tombstone() bool { return e.Update.Delete }

// Conflict reports whether concurrent revisions of the key coexist after
// this event.
func (e Event) Conflict() bool { return e.Branches > 1 }

func eventKind(res store.ApplyResult) EventKind {
	switch res {
	case store.Applied:
		return EventApplied
	case store.Duplicate:
		return EventDuplicate
	default:
		return EventObsolete
	}
}
