package pushpull

import (
	"fmt"
	"io"
	"time"

	"github.com/p2pgossip/update/internal/live"
	"github.com/p2pgossip/update/internal/metrics"
)

// Metrics is a registry of named counters and series; pass one to Open with
// WithMetrics to receive the node's operational counters (see the
// pushpull.Metric* constants for the names reported).
type Metrics = metrics.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// Counter names reported by an instrumented Node, re-exported from the live
// runtime plus the node-level ones.
const (
	// MetricPushSent counts push envelopes sent (including forwards).
	MetricPushSent = live.MetricPushSent
	// MetricPushReceived counts push envelopes received.
	MetricPushReceived = live.MetricPushReceived
	// MetricPushDuplicate counts received pushes already known locally.
	MetricPushDuplicate = live.MetricPushDuplicate
	// MetricApplied counts updates that changed the local store.
	MetricApplied = live.MetricApplied
	// MetricObsolete counts updates dominated by existing revisions.
	MetricObsolete = live.MetricObsolete
	// MetricPullRequests counts pull requests sent.
	MetricPullRequests = live.MetricPullRequests
	// MetricPullServed counts pull requests answered for peers.
	MetricPullServed = live.MetricPullServed
	// MetricPullUpdates counts updates received in pull responses.
	MetricPullUpdates = live.MetricPullUpdates
	// MetricAckSent counts acknowledgements sent (§6).
	MetricAckSent = live.MetricAckSent
	// MetricAckReceived counts acknowledgements received (§6).
	MetricAckReceived = live.MetricAckReceived
	// MetricSuspects counts peers promoted to suspected-offline (§6).
	MetricSuspects = live.MetricSuspects
	// MetricQuerySent counts query envelopes sent (§4.4).
	MetricQuerySent = live.MetricQuerySent
	// MetricQueryServed counts queries answered for peers (§4.4).
	MetricQueryServed = live.MetricQueryServed
	// MetricWatchEvents counts events delivered to Watch subscribers.
	MetricWatchEvents = "node.watch.events"
	// MetricWatchDropped counts events dropped because a Watch subscriber's
	// buffer was full.
	MetricWatchDropped = "node.watch.dropped"
)

// MetricNames returns the canonical list of every counter name an
// instrumented Node can report: the live protocol counters (kept canonical
// by live.CounterNames and its registration test), the store apply-outcome
// counters, and the node-level watch counters. The /metrics exporter in
// internal/serve iterates this list so the serving surface always exports
// exactly the counters the protocol emits.
func MetricNames() []string {
	names := make([]string, 0, len(live.CounterNames)+5)
	names = append(names, live.CounterNames...)
	return append(names,
		MetricStoreApplied,
		MetricStoreDuplicate,
		MetricStoreObsolete,
		MetricWatchEvents,
		MetricWatchDropped,
	)
}

// defaultWatchBuffer is the per-subscriber event buffer; see WithWatchBuffer.
const defaultWatchBuffer = 256

// nodeOptions collects everything Open needs to assemble a Node.
type nodeOptions struct {
	cfg           live.Config
	transports    int // how many transport options were supplied
	makeTransport func() (live.Transport, error)
	given         live.Transport // caller-supplied via WithTransport; owned by Open
	peers         []string
	metrics       *Metrics
	snapshot      io.Reader
	watchBuffer   int
	err           error // first option-time error, surfaced by Open
}

func defaultNodeOptions() *nodeOptions {
	return &nodeOptions{
		cfg:         live.DefaultReplicaConfig(),
		watchBuffer: defaultWatchBuffer,
	}
}

func (o *nodeOptions) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// Option configures a Node under construction; pass Options to Open.
type Option func(*nodeOptions)

// WithTCP listens on addr with the production TCP transport ("host:0" picks
// a free port). Exactly one of WithTCP, WithHub, or WithTransport must be
// given.
func WithTCP(addr string) Option {
	return func(o *nodeOptions) {
		o.transports++
		o.makeTransport = func() (live.Transport, error) { return live.ListenTCP(addr) }
	}
}

// WithHub attaches the node to an in-memory Hub under the given address —
// the transport of choice for tests and single-process examples. Exactly one
// of WithTCP, WithHub, or WithTransport must be given.
func WithHub(hub *Hub, addr string) Option {
	return func(o *nodeOptions) {
		o.transports++
		if hub == nil {
			o.fail(fmt.Errorf("%w: WithHub(nil, %q)", ErrInvalidConfig, addr))
			return
		}
		o.makeTransport = func() (live.Transport, error) { return hub.Attach(addr) }
	}
}

// WithTransport runs the node on a caller-supplied Transport. Open takes
// ownership immediately: the transport is closed on Close, and also when
// Open fails for any reason. Exactly one of WithTCP, WithHub, or
// WithTransport must be given.
func WithTransport(tr Transport) Option {
	return func(o *nodeOptions) {
		o.transports++
		if tr == nil {
			o.fail(fmt.Errorf("%w: WithTransport(nil)", ErrInvalidConfig))
			return
		}
		o.given = tr
		o.makeTransport = func() (live.Transport, error) { return tr, nil }
	}
}

// WithFanout sets the number of peers each push targets (the paper's R·f_r).
func WithFanout(n int) Option {
	return func(o *nodeOptions) { o.cfg.Fanout = n }
}

// WithPF sets the forwarding-probability schedule constructor, called once
// per distinct update (the paper's PF(t)). nil means PF(t) = 1.
func WithPF(newPF func() PFFunc) Option {
	return func(o *nodeOptions) { o.cfg.NewPF = newPF }
}

// WithAcks toggles the §6 acknowledgement optimisation: receivers ack the
// first copy of each update; senders prefer acking peers and temporarily
// skip suspected-offline ones.
func WithAcks(enabled bool) Option {
	return func(o *nodeOptions) { o.cfg.Acks = enabled }
}

// WithPullInterval sets the period of background anti-entropy pulls; 0
// disables periodic pulling (the eager pull at startup still happens).
func WithPullInterval(d time.Duration) Option {
	return func(o *nodeOptions) { o.cfg.PullInterval = d }
}

// WithPullAttempts sets the number of peers contacted per pull batch.
func WithPullAttempts(n int) Option {
	return func(o *nodeOptions) { o.cfg.PullAttempts = n }
}

// WithListMax caps the number of addresses carried per push (the live
// analogue of the paper's L_thr·R); 0 means unlimited.
func WithListMax(n int) Option {
	return func(o *nodeOptions) {
		o.cfg.PartialList = true
		o.cfg.ListMax = n
	}
}

// WithShards sets the node's store shard count, the lock-striping unit of
// the parallel ingest path: updates route to shards by the P-Grid trie hash
// of their origin (log, duplicate detection, clock segment) and key (live
// revisions), so more shards mean less contention between concurrent
// connections. The count rounds up to a power of two; 0 (the default)
// selects store.DefaultShards, and 1 degenerates to a single-lock store.
// Snapshot bytes are independent of the shard count.
func WithShards(n int) Option {
	return func(o *nodeOptions) { o.cfg.Shards = n }
}

// WithSeed seeds the node's random source, making peer sampling and
// forwarding decisions reproducible. 0 (the default) draws a seed from
// crypto/rand.
func WithSeed(seed int64) Option {
	return func(o *nodeOptions) { o.cfg.Seed = seed }
}

// WithMetrics directs the node's operational counters into reg.
func WithMetrics(reg *Metrics) Option {
	return func(o *nodeOptions) {
		if reg == nil {
			o.fail(fmt.Errorf("%w: WithMetrics(nil)", ErrInvalidConfig))
			return
		}
		o.metrics = reg
	}
}

// WithPeers teaches the node the given replica addresses at startup.
func WithPeers(addrs ...string) Option {
	return func(o *nodeOptions) { o.peers = append(o.peers, addrs...) }
}

// WithSnapshot restores the node's store from a snapshot (produced by
// Node.WriteSnapshot) before the protocol starts, so the first anti-entropy
// pull already reconciles against the restored state.
func WithSnapshot(r io.Reader) Option {
	return func(o *nodeOptions) {
		if r == nil {
			o.fail(fmt.Errorf("%w: WithSnapshot(nil)", ErrInvalidConfig))
			return
		}
		o.snapshot = r
	}
}

// WithJanitorInterval sets the period of the background maintenance pass
// that expires TTL'd keys, collects tombstones past retention, and compacts
// the update log up to the stable frontier (the pointwise-minimum clock
// across recently pulling peers). 0 disables the janitor.
func WithJanitorInterval(d time.Duration) Option {
	return func(o *nodeOptions) { o.cfg.JanitorInterval = d }
}

// WithTombstoneRetention sets how long tombstones outlive their delete
// before the janitor collects them — long enough for every replica to have
// pulled the death certificate. 0 selects the store default.
func WithTombstoneRetention(d time.Duration) Option {
	return func(o *nodeOptions) { o.cfg.TombstoneRetention = d }
}

// WithKeyTTL expires live revisions older than d into tombstones on the
// janitor's schedule. The decision depends only on the replicated stamp and
// the shared policy, so replicas expire deterministically without
// coordination. 0 disables expiry.
func WithKeyTTL(d time.Duration) Option {
	return func(o *nodeOptions) { o.cfg.KeyTTL = d }
}

// WithSnapshotCatchUp answers a pull whose delta exceeds n updates with one
// snapshot frame instead of an entry-by-entry list; 0 disables the size
// trigger (compaction gaps still force snapshots).
func WithSnapshotCatchUp(n int) Option {
	return func(o *nodeOptions) { o.cfg.SnapshotCatchUp = n }
}

// WithWatchBuffer sets the per-subscriber event buffer for Watch streams
// (default 256). When a subscriber falls this far behind, further events are
// dropped for it and counted under MetricWatchDropped.
func WithWatchBuffer(n int) Option {
	return func(o *nodeOptions) {
		if n <= 0 {
			o.fail(fmt.Errorf("%w: watch buffer %d must be positive", ErrInvalidConfig, n))
			return
		}
		o.watchBuffer = n
	}
}
