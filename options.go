package pushpull

import (
	"fmt"
	"io"
	"time"

	"github.com/p2pgossip/update/internal/live"
	"github.com/p2pgossip/update/internal/metrics"
	"github.com/p2pgossip/update/internal/wal"
)

// Metrics is a registry of named counters and series; pass one to Open with
// WithMetrics to receive the node's operational counters (see the
// pushpull.Metric* constants for the names reported).
type Metrics = metrics.Registry

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// Counter names reported by an instrumented Node, re-exported from the live
// runtime plus the node-level ones.
const (
	// MetricPushSent counts push envelopes sent (including forwards).
	MetricPushSent = live.MetricPushSent
	// MetricPushReceived counts push envelopes received.
	MetricPushReceived = live.MetricPushReceived
	// MetricPushDuplicate counts received pushes already known locally.
	MetricPushDuplicate = live.MetricPushDuplicate
	// MetricApplied counts updates that changed the local store.
	MetricApplied = live.MetricApplied
	// MetricObsolete counts updates dominated by existing revisions.
	MetricObsolete = live.MetricObsolete
	// MetricPullRequests counts pull requests sent.
	MetricPullRequests = live.MetricPullRequests
	// MetricPullServed counts pull requests answered for peers.
	MetricPullServed = live.MetricPullServed
	// MetricPullUpdates counts updates received in pull responses.
	MetricPullUpdates = live.MetricPullUpdates
	// MetricAckSent counts acknowledgements sent (§6).
	MetricAckSent = live.MetricAckSent
	// MetricAckReceived counts acknowledgements received (§6).
	MetricAckReceived = live.MetricAckReceived
	// MetricSuspects counts peers promoted to suspected-offline (§6).
	MetricSuspects = live.MetricSuspects
	// MetricQuerySent counts query envelopes sent (§4.4).
	MetricQuerySent = live.MetricQuerySent
	// MetricQueryServed counts queries answered for peers (§4.4).
	MetricQueryServed = live.MetricQueryServed
	// MetricWatchEvents counts events delivered to Watch subscribers.
	MetricWatchEvents = "node.watch.events"
	// MetricWatchDropped counts events dropped because a Watch subscriber's
	// buffer was full.
	MetricWatchDropped = "node.watch.dropped"
)

// MetricNames returns the canonical list of every counter name an
// instrumented Node can report: the live protocol counters (kept canonical
// by live.CounterNames and its registration test), the store apply-outcome
// counters, the write-ahead-log counters, and the node-level watch
// counters. The /metrics exporter in internal/serve iterates this list so
// the serving surface always exports exactly the counters the protocol
// emits.
func MetricNames() []string {
	names := make([]string, 0, len(live.CounterNames)+len(wal.CounterNames)+5)
	names = append(names, live.CounterNames...)
	names = append(names, wal.CounterNames...)
	return append(names,
		MetricStoreApplied,
		MetricStoreDuplicate,
		MetricStoreObsolete,
		MetricWatchEvents,
		MetricWatchDropped,
	)
}

// defaultWatchBuffer is the per-subscriber event buffer; see WithWatchBuffer.
const defaultWatchBuffer = 256

// nodeOptions collects everything Open needs to assemble a Node.
type nodeOptions struct {
	cfg           live.Config
	transports    int // how many transport options were supplied
	makeTransport func() (live.Transport, error)
	given         live.Transport // caller-supplied via WithTransport; owned by Open
	peers         []string
	metrics       *Metrics
	snapshot      io.Reader
	watchBuffer   int
	err           error // first option-time error, surfaced by Open
}

func defaultNodeOptions() *nodeOptions {
	return &nodeOptions{
		cfg:         live.DefaultReplicaConfig(),
		watchBuffer: defaultWatchBuffer,
	}
}

func (o *nodeOptions) fail(err error) {
	if o.err == nil {
		o.err = err
	}
}

// Option configures a Node under construction; pass Options to Open.
type Option func(*nodeOptions)

// WithTCP listens on addr with the production TCP transport ("host:0" picks
// a free port). Exactly one of WithTCP, WithHub, or WithTransport must be
// given.
func WithTCP(addr string) Option {
	return func(o *nodeOptions) {
		o.transports++
		o.makeTransport = func() (live.Transport, error) { return live.ListenTCP(addr) }
	}
}

// WithHub attaches the node to an in-memory Hub under the given address —
// the transport of choice for tests and single-process examples. Exactly one
// of WithTCP, WithHub, or WithTransport must be given.
func WithHub(hub *Hub, addr string) Option {
	return func(o *nodeOptions) {
		o.transports++
		if hub == nil {
			o.fail(fmt.Errorf("%w: WithHub(nil, %q)", ErrInvalidConfig, addr))
			return
		}
		o.makeTransport = func() (live.Transport, error) { return hub.Attach(addr) }
	}
}

// WithTransport runs the node on a caller-supplied Transport. Open takes
// ownership immediately: the transport is closed on Close, and also when
// Open fails for any reason. Exactly one of WithTCP, WithHub, or
// WithTransport must be given.
func WithTransport(tr Transport) Option {
	return func(o *nodeOptions) {
		o.transports++
		if tr == nil {
			o.fail(fmt.Errorf("%w: WithTransport(nil)", ErrInvalidConfig))
			return
		}
		o.given = tr
		o.makeTransport = func() (live.Transport, error) { return tr, nil }
	}
}

// WithFanout sets the number of peers each push targets (the paper's R·f_r).
func WithFanout(n int) Option {
	return func(o *nodeOptions) { o.cfg.Fanout = n }
}

// WithPF sets the forwarding-probability schedule constructor, called once
// per distinct update (the paper's PF(t)). nil means PF(t) = 1.
func WithPF(newPF func() PFFunc) Option {
	return func(o *nodeOptions) { o.cfg.NewPF = newPF }
}

// WithAcks toggles the §6 acknowledgement optimisation: receivers ack the
// first copy of each update; senders prefer acking peers and temporarily
// skip suspected-offline ones.
func WithAcks(enabled bool) Option {
	return func(o *nodeOptions) { o.cfg.Acks = enabled }
}

// WithPullInterval sets the period of background anti-entropy pulls; 0
// disables periodic pulling (the eager pull at startup still happens).
func WithPullInterval(d time.Duration) Option {
	return func(o *nodeOptions) { o.cfg.PullInterval = d }
}

// WithPullAttempts sets the number of peers contacted per pull batch.
func WithPullAttempts(n int) Option {
	return func(o *nodeOptions) { o.cfg.PullAttempts = n }
}

// WithListMax caps the number of addresses carried per push (the live
// analogue of the paper's L_thr·R); 0 means unlimited.
func WithListMax(n int) Option {
	return func(o *nodeOptions) {
		o.cfg.PartialList = true
		o.cfg.ListMax = n
	}
}

// WithShards sets the node's store shard count, the lock-striping unit of
// the parallel ingest path: updates route to shards by the P-Grid trie hash
// of their origin (log, duplicate detection, clock segment) and key (live
// revisions), so more shards mean less contention between concurrent
// connections. The count rounds up to a power of two; 0 (the default)
// selects store.DefaultShards, and 1 degenerates to a single-lock store.
// Snapshot bytes are independent of the shard count.
func WithShards(n int) Option {
	return func(o *nodeOptions) { o.cfg.Shards = n }
}

// WithSeed seeds the node's random source, making peer sampling and
// forwarding decisions reproducible. 0 (the default) draws a seed from
// crypto/rand.
func WithSeed(seed int64) Option {
	return func(o *nodeOptions) { o.cfg.Seed = seed }
}

// WithMetrics directs the node's operational counters into reg.
func WithMetrics(reg *Metrics) Option {
	return func(o *nodeOptions) {
		if reg == nil {
			o.fail(fmt.Errorf("%w: WithMetrics(nil)", ErrInvalidConfig))
			return
		}
		o.metrics = reg
	}
}

// WithPeers teaches the node the given replica addresses at startup.
func WithPeers(addrs ...string) Option {
	return func(o *nodeOptions) { o.peers = append(o.peers, addrs...) }
}

// WithSnapshot restores the node's store from a snapshot (produced by
// Node.WriteSnapshot) before the protocol starts, so the first anti-entropy
// pull already reconciles against the restored state. Mutually exclusive
// with WithWAL, whose checkpoint + log replay is the authoritative restore
// path.
func WithSnapshot(r io.Reader) Option {
	return func(o *nodeOptions) {
		if r == nil {
			o.fail(fmt.Errorf("%w: WithSnapshot(nil)", ErrInvalidConfig))
			return
		}
		o.snapshot = r
	}
}

// WAL is a write-ahead log attachable to a Node with WithWAL. Open one with
// OpenWAL (or internal/wal.Open inside this module).
type WAL = wal.Log

// WALOptions configures OpenWAL: directory, fsync policy, segment size.
type WALOptions = wal.Options

// WALSyncPolicy selects when appended records are fsynced; see the
// WALSync* constants.
type WALSyncPolicy = wal.SyncPolicy

// The write-ahead-log fsync policies, re-exported for WALOptions.
const (
	// WALSyncAlways fsyncs (group-committed) before every append returns.
	WALSyncAlways = wal.SyncAlways
	// WALSyncInterval fsyncs on a timer, bounding the loss window.
	WALSyncInterval = wal.SyncInterval
	// WALSyncNever leaves flushing to the kernel: state survives process
	// kills but not power loss.
	WALSyncNever = wal.SyncNever
)

// OpenWAL opens (creating or recovering) a write-ahead log for WithWAL.
// Close it after the Node that uses it is closed.
func OpenWAL(o WALOptions) (*WAL, error) { return wal.Open(o) }

// WALRecoveryStats reports what crash recovery restored; see
// Node.WALRecovery.
type WALRecoveryStats = live.WALRecovery

// WithWAL makes the node's applied state crash-consistent: every accepted
// update is appended to l before the apply is acknowledged, Open restores
// the log's checkpoint and replays surviving records before the protocol
// starts, and the janitor checkpoints the log when it outgrows the
// WithWALCheckpoint threshold. The node does not take ownership of l —
// close it after the node. Mutually exclusive with WithSnapshot.
func WithWAL(l *WAL) Option {
	return func(o *nodeOptions) {
		if l == nil {
			o.fail(fmt.Errorf("%w: WithWAL(nil)", ErrInvalidConfig))
			return
		}
		o.cfg.WAL = l
	}
}

// WithWALCheckpoint sets the resident WAL size (bytes) beyond which the
// janitor checkpoints — writes a store snapshot into the WAL directory and
// prunes the segments it covers. 0 (the default) selects
// live.DefaultWALCheckpointBytes.
func WithWALCheckpoint(bytes int64) Option {
	return func(o *nodeOptions) { o.cfg.WALCheckpointBytes = bytes }
}

// WithJanitorInterval sets the period of the background maintenance pass
// that expires TTL'd keys, collects tombstones past retention, and compacts
// the update log up to the stable frontier (the pointwise-minimum clock
// across recently pulling peers). 0 disables the janitor.
func WithJanitorInterval(d time.Duration) Option {
	return func(o *nodeOptions) { o.cfg.JanitorInterval = d }
}

// WithTombstoneRetention sets how long tombstones outlive their delete
// before the janitor collects them — long enough for every replica to have
// pulled the death certificate. 0 selects the store default.
func WithTombstoneRetention(d time.Duration) Option {
	return func(o *nodeOptions) { o.cfg.TombstoneRetention = d }
}

// WithKeyTTL expires live revisions older than d into tombstones on the
// janitor's schedule. The decision depends only on the replicated stamp and
// the shared policy, so replicas expire deterministically without
// coordination. 0 disables expiry.
func WithKeyTTL(d time.Duration) Option {
	return func(o *nodeOptions) { o.cfg.KeyTTL = d }
}

// WithSnapshotCatchUp answers a pull whose delta exceeds n updates with one
// snapshot frame instead of an entry-by-entry list; 0 disables the size
// trigger (compaction gaps still force snapshots).
func WithSnapshotCatchUp(n int) Option {
	return func(o *nodeOptions) { o.cfg.SnapshotCatchUp = n }
}

// WithWatchBuffer sets the per-subscriber event buffer for Watch streams
// (default 256). When a subscriber falls this far behind, further events are
// dropped for it and counted under MetricWatchDropped.
func WithWatchBuffer(n int) Option {
	return func(o *nodeOptions) {
		if n <= 0 {
			o.fail(fmt.Errorf("%w: watch buffer %d must be positive", ErrInvalidConfig, n))
			return
		}
		o.watchBuffer = n
	}
}
